"""The job server: manager-as-a-service (paper Section III-B3).

Upstream FireSim's manager is a batch tool — one invocation, one run.
:class:`JobServer` makes it a long-lived service the way the paper's
"simulation-cloud" framing implies: an asyncio event loop (running in a
daemon thread so synchronous callers and the CLI can drive it) owns a
job table, a :class:`~repro.serve.farm.ServeFarm` slot ledger, and a
:class:`~repro.serve.scheduler.Scheduler`; every accepted job runs in
its own forked process group via
:func:`~repro.serve.job.run_job_child`, so tenants cannot perturb each
other's target-time determinism — the bit-equality tests in
``tests/test_serve.py`` hold the server to that.

Preemption is checkpoint-backed: a victim is *ordered* to stop, stops
at its next segment boundary, ships back a portable
``(cycle, digest)`` checkpoint, and re-enters the queue; when
rescheduled it replays to that cycle and the digest proves the resumed
run is the same run.  Graceful shutdown drains or checkpoints every
job, reaps every child, and audits /dev/shm for leaked transport
segments.
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
import os
import signal
import threading
import time
from typing import Any, Dict, List, Optional

from repro import ReproError
from repro.dist.shm import leaked_segments
from repro.serve.farm import ServeFarm
from repro.serve.job import (
    JobRecord,
    JobSpec,
    JobState,
    TERMINAL_STATES,
    run_job_child,
)
from repro.serve.scheduler import AGING_EVERY, Scheduler


class ServeError(ReproError):
    """A server operation failed (unknown job, bad state, shut down)."""


class ServeStats:
    """Numeric counters exposed as ``serve.*`` gauges via telemetry."""

    def __init__(self) -> None:
        self.submitted = 0
        self.rejected = 0
        self.started = 0
        self.completed = 0
        self.failed = 0
        self.cancelled = 0
        self.preemptions = 0
        self.resumes = 0
        self.queued = 0
        self.running = 0
        self.capacity_slots = 0
        self.used_slots = 0
        self.schedule_rounds = 0


class JobServer:
    """Long-lived multi-tenant run-farm service.

    Thread model: one asyncio loop in a daemon thread owns all mutable
    state (job table, farm ledger, in-flight sets).  Each running job
    gets a pump in a worker thread (``asyncio.to_thread``) that blocks
    on the child's pipe; it only *reads* and reports back into the loop.
    Commands to children (preempt/cancel) are sent from the loop thread
    — the ``multiprocessing.Pipe`` is full-duplex, and the two threads
    touch opposite directions only.
    """

    def __init__(
        self,
        farm: Optional[ServeFarm] = None,
        event_log: Optional[str] = None,
        aging_every: int = AGING_EVERY,
        poll_interval_s: float = 0.02,
    ) -> None:
        self.farm = farm or ServeFarm()
        self.scheduler = Scheduler(aging_every=aging_every)
        self.stats = ServeStats()
        self.stats.capacity_slots = self.farm.capacity
        self.records: Dict[int, JobRecord] = {}
        self.events: List[Dict[str, Any]] = []
        self.event_log = event_log
        self.poll_interval_s = poll_interval_s
        self.leaked: List[str] = []
        self._next_id = 1
        self._seq = 0
        self._event_seq = 0
        self._preempting: set = set()
        self._cancelling: set = set()
        self._pipes: Dict[int, Any] = {}
        self._procs: Dict[int, Any] = {}
        self._tasks: Dict[int, asyncio.Task] = {}
        self._accepting = True
        self._no_new_starts = False
        self._shut_down = False
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._mp = multiprocessing.get_context("fork")

    # -- lifecycle ------------------------------------------------------

    def start(self) -> "JobServer":
        """Run the event loop in a daemon thread; idempotent."""
        if self._thread is not None:
            return self
        ready = threading.Event()

        def _run() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop
            ready.set()
            loop.run_forever()
            # Drain callbacks scheduled during the final iteration.
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

        self._thread = threading.Thread(
            target=_run, name="repro-serve", daemon=True
        )
        self._thread.start()
        ready.wait()
        self._emit("serving", farm=self.farm.describe())
        return self

    @property
    def loop(self) -> asyncio.AbstractEventLoop:
        if self._loop is None:
            raise ServeError("server not started")
        return self._loop

    def stop(self, drain: bool = False, timeout_s: float = 60.0) -> None:
        """Graceful shutdown from any thread: see :meth:`shutdown`."""
        if self._loop is None or self._shut_down:
            return
        future = asyncio.run_coroutine_threadsafe(
            self.shutdown(drain=drain), self.loop
        )
        future.result(timeout=timeout_s)
        self.loop.call_soon_threadsafe(self.loop.stop)
        assert self._thread is not None
        self._thread.join(timeout=timeout_s)

    def install_signal_handlers(self) -> None:
        """SIGINT/SIGTERM → graceful shutdown (the ``serve`` verb)."""

        def _handler(signum: int, frame: Any) -> None:
            raise KeyboardInterrupt

        signal.signal(signal.SIGTERM, _handler)
        signal.signal(signal.SIGINT, _handler)

    # -- events ---------------------------------------------------------

    def _emit(self, event: str, job_id: Optional[int] = None,
              **fields: Any) -> None:
        record: Dict[str, Any] = {
            "seq": self._event_seq,
            "ts": round(time.time(), 6),
            "event": event,
        }
        self._event_seq += 1
        if job_id is not None:
            record["job_id"] = job_id
        record.update(fields)
        self.events.append(record)
        if self.event_log:
            with open(self.event_log, "a", encoding="utf-8") as handle:
                handle.write(json.dumps(record, sort_keys=True) + "\n")

    def _sync_gauges(self) -> None:
        states = [r.state for r in self.records.values()]
        self.stats.queued = sum(1 for s in states if s == JobState.QUEUED)
        self.stats.running = sum(1 for s in states if s == JobState.RUNNING)
        self.stats.used_slots = self.farm.used

    # -- public API (coroutines on the server loop) ---------------------

    async def submit(self, spec_dict: Dict[str, Any]) -> int:
        """Validate, admit, and (maybe immediately) schedule a job."""
        if not self._accepting:
            raise ServeError("server is shutting down; not accepting jobs")
        spec = JobSpec.from_dict(spec_dict)
        slots = spec.fpga_slots()
        if slots > self.farm.capacity:
            self.stats.rejected += 1
            raise ServeError(
                f"job {spec.name!r} needs {slots} FPGA slots but the farm "
                f"has {self.farm.capacity}; it can never be scheduled"
            )
        job_id = self._next_id
        self._next_id += 1
        self._seq += 1
        record = JobRecord(
            job_id=job_id, spec=spec, submit_seq=self._seq,
        )
        record.cost = self.farm.job_cost(
            slots, spec.duration_ms / 3.6e6, spec.preemptible
        )
        self.records[job_id] = record
        self.stats.submitted += 1
        self._emit(
            "submitted", job_id, name=spec.name, slots=slots,
            priority=spec.priority, preemptible=spec.preemptible,
            pricing=record.cost["pricing"],
        )
        self._schedule()
        return job_id

    async def jobs(self) -> List[Dict[str, Any]]:
        listing = [
            record.to_dict()
            for record in sorted(
                self.records.values(), key=lambda r: r.job_id
            )
        ]
        return listing

    async def describe(self) -> Dict[str, Any]:
        self._sync_gauges()
        return {
            "farm": self.farm.describe(),
            "jobs": await self.jobs(),
            "stats": {
                key: value for key, value in vars(self.stats).items()
            },
        }

    async def cancel(self, job_id: int) -> Dict[str, Any]:
        record = self._record(job_id)
        if record.state in TERMINAL_STATES:
            raise ServeError(
                f"job {job_id} already {record.state.value}; nothing to "
                "cancel"
            )
        if record.state == JobState.RUNNING:
            # Order the child to stop at its next boundary; the pump's
            # terminal message completes the cancellation.
            self._cancelling.add(job_id)
            self._send_command(job_id, "cancel")
        else:
            # Queued or preempted: never reaches a child, settle now.
            self._settle(record, JobState.CANCELLED)
            self._emit("cancelled", job_id, where="queue")
            self._schedule()
        return {"job_id": job_id, "state": record.state.value}

    async def wait(self, job_id: int,
                   timeout_s: float = 120.0) -> Dict[str, Any]:
        """Block until a job reaches a terminal state; return its record."""
        record = self._record(job_id)
        deadline = time.monotonic() + timeout_s
        while record.state not in TERMINAL_STATES:
            if time.monotonic() > deadline:
                raise ServeError(
                    f"timed out waiting for job {job_id} "
                    f"(state {record.state.value})"
                )
            await asyncio.sleep(self.poll_interval_s)
        return record.to_dict()

    async def shutdown(self, drain: bool = False,
                       timeout_s: float = 120.0) -> Dict[str, Any]:
        """Stop accepting, then drain or checkpoint/cancel everything.

        ``drain=True`` lets running *and queued* jobs finish;
        ``drain=False`` checkpoints running preemptible jobs (their
        state survives as portable checkpoints in the job table),
        cancels the rest, and cancels the queue.  Either way every
        child is reaped and /dev/shm is audited for leaked transport
        segments before the ``shutdown`` event is logged.
        """
        if self._shut_down:
            return {"leaked_segments": list(self.leaked)}
        self._accepting = False
        if not drain:
            # Checkpointed victims must stay parked, not be rescheduled
            # by the very preemption that was meant to park them.
            self._no_new_starts = True
            for record in list(self.records.values()):
                if record.state == JobState.QUEUED:
                    self._settle(record, JobState.CANCELLED)
                    self._emit("cancelled", record.job_id, where="queue")
                elif record.state == JobState.RUNNING:
                    if record.spec.preemptible:
                        if record.job_id not in self._preempting:
                            self._preempting.add(record.job_id)
                            self._send_command(record.job_id, "preempt")
                    elif record.job_id not in self._cancelling:
                        self._cancelling.add(record.job_id)
                        self._send_command(record.job_id, "cancel")
        deadline = time.monotonic() + timeout_s
        while any(
            r.state == JobState.RUNNING for r in self.records.values()
        ) or (drain and any(
            r.state in (JobState.QUEUED, JobState.PREEMPTED)
            for r in self.records.values()
        )):
            if time.monotonic() > deadline:
                self._emit("shutdown_timeout")
                for job_id in list(self._procs):
                    self._kill(job_id)
                break
            await asyncio.sleep(self.poll_interval_s)
        for task in list(self._tasks.values()):
            try:
                await asyncio.wait_for(task, timeout=10.0)
            except (asyncio.TimeoutError, asyncio.CancelledError):
                pass
            except Exception:  # noqa: BLE001 - already logged as failed
                pass
        self.leaked = leaked_segments()
        self._shut_down = True
        self._sync_gauges()
        self._emit(
            "shutdown", drained=drain, leaked_segments=list(self.leaked),
        )
        return {"leaked_segments": list(self.leaked)}

    # -- internals (loop thread only) -----------------------------------

    def _record(self, job_id: int) -> JobRecord:
        try:
            return self.records[job_id]
        except KeyError:
            raise ServeError(f"unknown job id {job_id}") from None

    def _send_command(self, job_id: int, command: str) -> None:
        pipe = self._pipes.get(job_id)
        if pipe is None:
            return
        try:
            pipe.send((command,))
        except (OSError, ValueError):
            pass  # child already exiting; the pump will report it

    def _settle(self, record: JobRecord, state: JobState) -> None:
        """Move a job to a terminal state and free its slots."""
        record.state = state
        self.farm.release(record.job_id)
        if state == JobState.CANCELLED:
            self.stats.cancelled += 1
        elif state == JobState.FAILED:
            self.stats.failed += 1
        elif state == JobState.DONE:
            self.stats.completed += 1
        self._sync_gauges()

    def _schedule(self) -> None:
        """One scheduling round: age, plan, execute the plan."""
        if self._shut_down or self._no_new_starts:
            return
        self.stats.schedule_rounds += 1
        self.scheduler.age(self.records)
        plan = self.scheduler.plan(
            self.records, self.farm, frozenset(self._preempting)
        )
        for action in plan:
            record = self.records[action.job_id]
            if action.kind == "preempt":
                if record.state != JobState.RUNNING:
                    continue
                self._preempting.add(record.job_id)
                self._emit(
                    "preempting", record.job_id,
                    by="scheduler",
                )
                self._send_command(record.job_id, "preempt")
            elif record.state == JobState.QUEUED:
                self._start(record)
        self._sync_gauges()

    def _start(self, record: JobRecord) -> None:
        slots = record.spec.fpga_slots()
        self.farm.allocate(record.job_id, slots)
        record.state = JobState.RUNNING
        resumed = record.checkpoint is not None and \
            (record.checkpoint.get("cycle") or 0) > 0
        if resumed:
            self.stats.resumes += 1
        self.stats.started += 1
        self._emit(
            "started", record.job_id, slots=slots,
            resumed=resumed,
            resume_cycle=(record.checkpoint or {}).get("cycle", 0),
        )
        task = self.loop.create_task(self._run_job(record))
        self._tasks[record.job_id] = task

    async def _run_job(self, record: JobRecord) -> None:
        job_id = record.job_id
        parent, child = self._mp.Pipe(duplex=True)
        process = self._mp.Process(
            target=run_job_child,
            args=(record.spec.to_dict(), record.checkpoint, child),
            name=f"serve-job-{job_id}",
        )
        process.start()
        child.close()
        self._pipes[job_id] = parent
        self._procs[job_id] = process
        try:
            terminal = await asyncio.to_thread(
                self._pump, process, parent, record
            )
        finally:
            self._pipes.pop(job_id, None)
        self._on_terminal(record, terminal)
        self._reap(job_id, process)
        self._tasks.pop(job_id, None)
        self._schedule()

    def _pump(self, process: Any, pipe: Any,
              record: JobRecord) -> tuple:
        """Worker thread: block on the child's pipe until terminal.

        Only reads the pipe (commands go down from the loop thread) and
        only touches ``record`` for monotonic progress counters.
        """
        while True:
            try:
                if pipe.poll(self.poll_interval_s):
                    message = pipe.recv()
                    if message[0] == "progress":
                        continue
                    return message
                elif not process.is_alive():
                    # One last drain: the child may have sent its
                    # terminal message right before exiting.
                    if pipe.poll(0):
                        message = pipe.recv()
                        if message[0] != "progress":
                            return message
                        continue
                    return (
                        "failed",
                        f"job process exited without a result "
                        f"(exitcode {process.exitcode})",
                    )
            except (EOFError, OSError):
                return (
                    "failed",
                    f"job pipe closed without a result "
                    f"(exitcode {process.exitcode})",
                )

    def _on_terminal(self, record: JobRecord, terminal: tuple) -> None:
        """Loop thread: apply a child's terminal message."""
        job_id = record.job_id
        kind = terminal[0]
        was_cancelling = job_id in self._cancelling
        self._preempting.discard(job_id)
        self._cancelling.discard(job_id)
        if kind == "preempted" and was_cancelling:
            # Preempt order landed first, but the user asked to cancel:
            # honor the cancel; the checkpoint is discarded.
            kind = "cancelled"
            terminal = ("cancelled", terminal[1].get("cycle", 0))
        if kind == "done":
            record.result = terminal[1]
            record.checkpoint = None
            self._settle(record, JobState.DONE)
            self._emit("completed", job_id,
                       target_ms=terminal[1].get("target_ms"))
        elif kind == "preempted":
            checkpoint = terminal[1]
            record.checkpoint = checkpoint
            record.preemptions += 1
            self.stats.preemptions += 1
            self.farm.release(job_id)
            # Back into the queue, keeping its aging credit so repeated
            # preemption raises its effective priority (no starvation).
            record.state = JobState.QUEUED
            self._emit(
                "preempted", job_id,
                cycle=checkpoint.get("cycle"),
                digest=(checkpoint.get("digest") or "")[:16],
            )
            self._sync_gauges()
        elif kind == "cancelled":
            self._settle(record, JobState.CANCELLED)
            self._emit("cancelled", job_id, where="running",
                       cycle=terminal[1])
        else:
            record.error = str(terminal[1])
            self._settle(record, JobState.FAILED)
            self._emit("failed", job_id, error=record.error)

    def _reap(self, job_id: int, process: Any) -> None:
        process.join(timeout=10.0)
        if process.is_alive():
            self._kill(job_id)
            process.join(timeout=10.0)
        self._procs.pop(job_id, None)

    def _kill(self, job_id: int) -> None:
        """Escalate: SIGTERM the job's process group, then SIGKILL."""
        process = self._procs.get(job_id)
        if process is None or process.pid is None:
            return
        for signum in (signal.SIGTERM, signal.SIGKILL):
            if not process.is_alive():
                return
            try:
                os.killpg(process.pid, signum)
            except (ProcessLookupError, PermissionError):
                return
            process.join(timeout=5.0)
