"""Software model: kernel, scheduler, network stack, and application workloads."""
