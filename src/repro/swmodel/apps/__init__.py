"""Application models: ping, iperf, bare-metal streaming, memcached, mutilate,
SPECint profiles, Linux boot, and disaggregated accelerator pools."""
