"""Disaggregated accelerator pools (Section VIII).

"FireSim nodes can integrate Hwachas into a cluster, including
simulating disaggregated pools of Hwachas."  This module builds that
scenario on the reproduction:

* an **accelerator-pool blade** serves offload requests over the custom
  bare-metal protocol: each request names a compute kernel, the blade
  prices it on one of its Hwacha instances (queueing when all are busy),
  and replies when the kernel retires;
* a **client offload API** sends kernels to the pool and measures
  end-to-end offload latency, letting experiments compare local scalar
  execution, a local Hwacha, and a pooled Hwacha across the network —
  the disaggregation trade-off in one plot.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.net.ethernet import EthernetFrame, HEADER_BYTES
from repro.swmodel.kernel import ThreadAPI
from repro.swmodel.process import Send, SendRaw, Sleep, ThreadBody
from repro.swmodel.server import ServerBlade
from repro.tile.accelerators import Hwacha
from repro.tile.rocket import ComputeBlock

OP_OFFLOAD = "accel-offload"
OP_RESULT = "accel-result"

RESULT_LATENCY = "accel_offload_latency_cycles"


@dataclass
class AcceleratorPoolStats:
    requests: int = 0
    busy_queued: int = 0


def attach_accelerator_pool(
    blade: ServerBlade,
    num_accelerators: int = 4,
    accelerator: Optional[Hwacha] = None,
) -> AcceleratorPoolStats:
    """Install a bare-metal Hwacha pool server on a blade.

    Requests carry a pickled-free kernel description (instruction count
    and vectorizable fraction are encoded in the ComputeBlock); replies
    return after the accelerator's modeled execution time, so clients
    observe queueing when the pool saturates.
    """
    if num_accelerators < 1:
        raise ValueError("a pool needs at least one accelerator")
    accelerator = accelerator or Hwacha()
    stats = AcceleratorPoolStats()
    free_at = [0] * num_accelerators

    def handler(cycle: int, frame: EthernetFrame) -> None:
        payload = frame.payload
        if not (isinstance(payload, tuple) and payload and payload[0] == OP_OFFLOAD):
            return
        _, request_id, kernel = payload
        stats.requests += 1
        unit = min(range(num_accelerators), key=lambda u: (free_at[u], u))
        start = max(cycle, free_at[unit])
        if start > cycle:
            stats.busy_queued += 1
        done = start + accelerator.invoke_cycles(start, kernel)
        free_at[unit] = done
        blade.nic.post_send(
            done,
            EthernetFrame(
                src=blade.mac,
                dst=frame.src,
                size_bytes=64,
                payload=(OP_RESULT, request_id),
            ),
        )

    blade.kernel.register_raw_handler(handler)
    return stats


_request_ids = itertools.count()


def make_offload_client(
    pool_mac: int,
    kernels: List[ComputeBlock],
    gap_cycles: int = 10_000,
) -> Callable[[ThreadAPI], ThreadBody]:
    """A client thread that offloads kernels to the pool sequentially.

    Offload latency (send to result, including network and any pool
    queueing) is recorded per kernel under :data:`RESULT_LATENCY`.
    """

    def body(api: ThreadAPI) -> ThreadBody:
        pending: Dict[int, int] = {}
        results: List[int] = []

        def on_result(cycle: int, frame: EthernetFrame) -> None:
            payload = frame.payload
            if not (
                isinstance(payload, tuple) and payload and payload[0] == OP_RESULT
            ):
                return
            request_id = payload[1]
            if request_id in pending:
                api.record(RESULT_LATENCY, cycle - pending.pop(request_id))

        api._kernel.register_raw_handler(on_result)
        for kernel in kernels:
            request_id = next(_request_ids)
            pending[request_id] = api.now()
            yield SendRaw(
                dst_mac=pool_mac,
                payload=(OP_OFFLOAD, request_id, kernel),
                frame_bytes=128 + HEADER_BYTES,
            )
            yield Sleep(gap_cycles)
        # Wait for stragglers before exiting.
        while pending:
            yield Sleep(10_000)

    return body
