"""Linux boot-to-userspace model.

The Figure 8 benchmark "boots Linux to userspace, then immediately powers
down the nodes" — exercising no target network traffic while the host
still moves a full complement of (empty) tokens.  This model reproduces
the software side: a boot thread burns the CPU time a RISC-V Linux boot
takes on a Rocket core, prints the familiar banner milestones to the
blade's UART (each stamped with its exact target cycle), and records the
boot-finished cycle that a power-down harness can key on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Tuple

from repro.swmodel.kernel import ThreadAPI
from repro.swmodel.process import Compute, ThreadBody

RESULT_KEY = "linux_booted_cycle"


@dataclass(frozen=True)
class BootConfig:
    """Boot phases: (banner line, cycles of kernel work before it).

    The total is ~12.8M cycles (~4 ms of target time) — a deliberately
    compressed boot so tests stay fast; scale up for realism.
    """

    phases: Tuple[Tuple[str, int], ...] = (
        ("OpenSBI v0.9", 400_000),
        ("Linux version 5.7.0 (riscv64)", 1_600_000),
        ("Memory: 16384MB available", 2_400_000),
        ("smp: Brought up 1 node, 4 CPUs", 3_200_000),
        ("icenet: registered network device", 1_600_000),
        ("blkdev: 16 GiB block device attached", 1_200_000),
        ("VFS: Mounted root (ext2 filesystem)", 1_600_000),
        ("Welcome to Buildroot", 800_000),
    )

    @property
    def total_cycles(self) -> int:
        return sum(cycles for _, cycles in self.phases)


def make_linux_boot(
    config: BootConfig | None = None,
    then_poweroff: bool = True,
) -> Callable[[ThreadAPI], ThreadBody]:
    """The boot thread body (runs as the blade's init path)."""
    config = config or BootConfig()

    def body(api: ThreadAPI) -> ThreadBody:
        for line, cycles in config.phases:
            yield Compute(cycles)
            api.console(line + "\n")
        api.record(RESULT_KEY, api.now())
        if then_poweroff:
            api.console("reboot: Power down\n")

    return body


def booted_cycle(results: dict) -> int:
    """The cycle at which a blade reached userspace."""
    try:
        return results[RESULT_KEY][0]
    except (KeyError, IndexError):
        raise LookupError("blade has not finished booting") from None
