"""iperf3 model: single-stream TCP bandwidth between two nodes (§IV-B).

The paper measures an average of 1.4 Gbit/s over TCP between two nodes
behind a ToR switch and attributes the gap to the 200 Gbit/s link to the
slow single-issue in-order Rocket core running the network stack on an
immature RISC-V Linux port.  Our model reproduces exactly that structure:
the stream is CPU-cost-bound — every MSS segment costs the sender
~8.5 us of protocol + driver processing and the receiver a comparable
softirq cost — so goodput lands near 1.4 Gbit/s regardless of the link.
"""

from __future__ import annotations

from typing import Callable

from repro.net.ethernet import MTU_BYTES, IP_TCP_HEADER_BYTES, segment_bytes
from repro.swmodel.kernel import ThreadAPI
from repro.swmodel.netstack import PROTO_TCP
from repro.swmodel.process import Recv, Send, ThreadBody

IPERF_PORT = 5201

#: Result keys recorded on the server blade.
RESULT_BYTES = "iperf_bytes"
RESULT_CYCLES = "iperf_cycles"

MSS_BYTES = MTU_BYTES - IP_TCP_HEADER_BYTES  # 1460 B payload per segment


def make_iperf_client(
    dst_mac: int,
    total_bytes: int,
    dport: int = IPERF_PORT,
) -> Callable[[ThreadAPI], ThreadBody]:
    """The sending side: stream ``total_bytes`` then a FIN marker."""

    def body(api: ThreadAPI) -> ThreadBody:
        start = api.now()
        for segment in segment_bytes(total_bytes, mss=MSS_BYTES):
            yield Send(
                dst_mac=dst_mac,
                payload="data",
                payload_bytes=segment,
                proto=PROTO_TCP,
                dport=dport,
            )
        yield Send(
            dst_mac=dst_mac,
            payload="fin",
            payload_bytes=1,
            proto=PROTO_TCP,
            dport=dport,
        )
        api.record("iperf_client_cycles", api.now() - start)

    return body


def make_iperf_server(
    dport: int = IPERF_PORT,
) -> Callable[[ThreadAPI], ThreadBody]:
    """The receiving side: drain segments, record goodput on FIN."""

    def body(api: ThreadAPI) -> ThreadBody:
        sock = api.socket(PROTO_TCP, dport)
        received = 0
        first_cycle = None
        while True:
            datagram = yield Recv(sock)
            if first_cycle is None:
                first_cycle = api.now()
            if datagram.payload == "fin":
                break
            received += datagram.payload_bytes
        api.record(RESULT_BYTES, received)
        api.record(RESULT_CYCLES, api.now() - first_cycle)

    return body


def goodput_bps(bytes_received: int, cycles: int, freq_hz: float) -> float:
    """Convert a recorded (bytes, cycles) pair into bits per second."""
    if cycles <= 0:
        raise ValueError(f"cycles must be positive, got {cycles}")
    return bytes_received * 8 * freq_hz / cycles
