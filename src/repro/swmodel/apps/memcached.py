"""memcached server model (Sections IV-E and V-C).

The paper's end-to-end validation runs memcached on one 4-core blade and
drives it with the mutilate load generator, reproducing the thread-
imbalance phenomenon of Leverich & Kozyrakis: with more worker threads
than cores, tail latency rises sharply while the median is untouched.

The model mirrors memcached's architecture where it matters:

* ``T`` worker threads, each owning a share of the client connections
  (memcached distributes connections round-robin across workers — here a
  connection's requests always land on ``worker[conn_id % T]``);
* per-request work: parse + hash-table lookup + reply construction,
  modeled as a deterministic base cost plus a value-size-dependent term
  and seeded exponential jitter;
* replies sent over the same UDP-style transport the requests arrived on.

Pinning support (one worker per core) comes from the scheduler's
``pinned_core``; the thread-imbalance and poor-placement behaviour comes
from the scheduler itself (:mod:`repro.swmodel.sched`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.swmodel.kernel import ThreadAPI
from repro.swmodel.netstack import PROTO_UDP
from repro.swmodel.process import Compute, Recv, Send, ThreadBody
from repro.swmodel.server import ServerBlade

MEMCACHED_BASE_PORT = 11211

#: Typical small-object GET sizes (mutilate's default-ish workload).
REQUEST_BYTES = 70
REPLY_BYTES = 130


@dataclass(frozen=True)
class MemcachedConfig:
    """Service-time model for one memcached instance.

    Attributes:
        num_threads: worker thread count (4 or 5 in Figure 7).
        pin_threads: pin worker ``i`` to core ``i`` ("4 threads pinned").
        base_service_cycles: deterministic per-GET processing.
        jitter_mean_cycles: mean of the exponential service jitter.
        reply_bytes: value size returned to clients.
    """

    num_threads: int = 4
    pin_threads: bool = False
    base_service_cycles: int = 51_200  # ~16 us parse + lookup + reply build
    jitter_mean_cycles: int = 6_400  # ~2 us tail from hash/alloc variance
    reply_bytes: int = REPLY_BYTES
    seed: int = 1234

    def __post_init__(self) -> None:
        if self.num_threads < 1:
            raise ValueError("memcached needs at least one worker thread")
        if self.pin_threads and self.num_threads > 64:
            raise ValueError("implausible pin configuration")


def worker_port(worker_index: int) -> int:
    """The UDP port worker ``i`` listens on (connection sharding)."""
    return MEMCACHED_BASE_PORT + worker_index


def port_for_connection(conn_id: int, num_threads: int) -> int:
    """Which worker port a connection's requests go to (round-robin)."""
    return worker_port(conn_id % num_threads)


def make_memcached_worker(
    worker_index: int,
    config: MemcachedConfig,
) -> Callable[[ThreadAPI], ThreadBody]:
    """One memcached worker thread body."""

    def body(api: ThreadAPI) -> ThreadBody:
        sock = api.socket(PROTO_UDP, worker_port(worker_index))
        rng = random.Random((config.seed << 8) | worker_index)
        while True:
            request = yield Recv(sock)
            if request.payload == "shutdown":
                break
            service = config.base_service_cycles + round(
                rng.expovariate(1.0 / config.jitter_mean_cycles)
            )
            yield Compute(service)
            # Echo the request's identity back so the client can match
            # and compute end-to-end latency.
            yield Send(
                dst_mac=request.src_mac,
                payload=("resp", request.payload),
                payload_bytes=config.reply_bytes,
                proto=PROTO_UDP,
                sport=worker_port(worker_index),
                dport=request.sport,
                conn_id=request.conn_id,
            )

    return body


def start_memcached(
    blade: ServerBlade, config: Optional[MemcachedConfig] = None
) -> List[str]:
    """Spawn all worker threads on a blade; returns their thread names.

    With ``pin_threads`` set, worker ``i`` is pinned to core
    ``i % num_cores`` (the "4 threads pinned" line of Figure 7).
    """
    config = config or MemcachedConfig()
    names = []
    for worker_index in range(config.num_threads):
        pinned = (
            worker_index % blade.config.num_cores
            if config.pin_threads
            else None
        )
        name = f"memcached-{worker_index}"
        blade.spawn(
            name,
            make_memcached_worker(worker_index, config),
            pinned_core=pinned,
        )
        names.append(name)
    return names
