"""mutilate load-generator model (Leverich & Kozyrakis [32]).

mutilate is an open-loop, latency-measuring memcached load generator:
requests are issued on a Poisson schedule regardless of outstanding
responses (so server-side queueing shows up as latency, not reduced
offered load), and every response is matched with its request timestamp
to produce a latency sample.

Each client blade runs two threads:

* the **send thread** paces requests with seeded exponential gaps at the
  configured per-client QPS, spraying them across ``num_connections``
  connections (which shards them across the server's workers);
* the **receive thread** matches responses and records end-to-end
  latency samples (request-send to response-receive, in cycles).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

from repro.swmodel.apps.memcached import (
    REQUEST_BYTES,
    port_for_connection,
)
from repro.swmodel.kernel import ThreadAPI
from repro.swmodel.netstack import PROTO_UDP
from repro.swmodel.process import Recv, Send, Sleep, ThreadBody
from repro.swmodel.server import ServerBlade

#: Result key for latency samples (cycles), recorded on each client.
RESULT_LATENCY = "mutilate_latency_cycles"
RESULT_SENT = "mutilate_requests_sent"
RESULT_RECEIVED = "mutilate_responses_received"


@dataclass(frozen=True)
class MutilateConfig:
    """One client's load configuration.

    Attributes:
        server_mac: the memcached blade's MAC.
        target_qps: this client's offered load (requests/second).
        duration_cycles: how long to generate load.
        num_connections: connections sharded across server workers.
        server_threads: worker count at the server (for sharding).
        client_port: base UDP port for this client's receive socket.
        seed: RNG seed for the Poisson arrival process.
        freq_hz: target clock frequency (cycles <-> seconds).
    """

    server_mac: int
    target_qps: float
    duration_cycles: int
    num_connections: int = 4
    server_threads: int = 4
    client_port: int = 20000
    seed: int = 7
    freq_hz: float = 3.2e9

    def __post_init__(self) -> None:
        if self.target_qps <= 0:
            raise ValueError("target QPS must be positive")
        if self.duration_cycles <= 0:
            raise ValueError("duration must be positive")
        if self.num_connections < 1:
            raise ValueError("need at least one connection")


def make_mutilate_sender(config: MutilateConfig) -> Callable[[ThreadAPI], ThreadBody]:
    """Open-loop Poisson request generator."""

    def body(api: ThreadAPI) -> ThreadBody:
        rng = random.Random(config.seed)
        mean_gap_cycles = config.freq_hz / config.target_qps
        end_cycle = api.now() + config.duration_cycles
        sent = 0
        while api.now() < end_cycle:
            conn = rng.randrange(config.num_connections)
            request_id = (config.seed << 32) | sent
            yield Send(
                dst_mac=config.server_mac,
                payload=(request_id, api.now()),
                payload_bytes=REQUEST_BYTES,
                proto=PROTO_UDP,
                sport=config.client_port,
                dport=port_for_connection(conn, config.server_threads),
                conn_id=conn,
            )
            sent += 1
            gap = round(rng.expovariate(1.0 / mean_gap_cycles))
            yield Sleep(max(gap, 1))
        api.record(RESULT_SENT, sent)

    return body


def make_mutilate_receiver(config: MutilateConfig) -> Callable[[ThreadAPI], ThreadBody]:
    """Latency-measuring response sink (runs forever; the experiment
    harness stops the simulation when the measurement window closes)."""

    def body(api: ThreadAPI) -> ThreadBody:
        sock = api.socket(PROTO_UDP, config.client_port)
        received = 0
        while True:
            response = yield Recv(sock)
            payload = response.payload
            if not (isinstance(payload, tuple) and payload[0] == "resp"):
                continue
            _request_id, sent_cycle = payload[1]
            api.record(RESULT_LATENCY, api.now() - sent_cycle)
            received += 1

    return body


def start_mutilate(blade: ServerBlade, config: MutilateConfig) -> None:
    """Attach a mutilate client (sender + receiver threads) to a blade."""
    blade.spawn(f"{blade.name}-mutilate-rx", make_mutilate_receiver(config))
    blade.spawn(f"{blade.name}-mutilate-tx", make_mutilate_sender(config))


def latency_percentiles(
    samples: Sequence[int], percentiles: Sequence[float] = (50.0, 95.0)
) -> Tuple[float, ...]:
    """Nearest-rank percentiles over latency samples (cycles)."""
    if not samples:
        raise ValueError("no latency samples collected")
    ordered = sorted(samples)
    out = []
    for p in percentiles:
        if not 0 < p <= 100:
            raise ValueError(f"percentile {p} out of (0, 100]")
        rank = max(1, round(p / 100 * len(ordered)))
        out.append(float(ordered[rank - 1]))
    return tuple(out)
