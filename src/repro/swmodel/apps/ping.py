"""The ``ping`` utility model (Section IV-A).

The network-latency validation boots Linux on an 8-node cluster behind
one ToR switch, collects 100 pings between two nodes, and compares the
measured RTT against the ideal (4x link latency + 2x switching latency)
— the offset is the Linux networking-stack overhead, ~34 us.

The client thread timestamps immediately before the sendto() syscall and
immediately after recv() returns, exactly like ping; echo replies are
generated in kernel softirq context on the target (see
:meth:`repro.swmodel.netstack.NetworkStack._answer_echo`).
"""

from __future__ import annotations

from typing import Callable

from repro.swmodel.kernel import ThreadAPI
from repro.swmodel.netstack import PROTO_ICMP
from repro.swmodel.process import Recv, Send, Sleep, ThreadBody

#: Default ICMP payload: ping's 56 data bytes.
PING_PAYLOAD_BYTES = 56

#: Result key under which RTTs (in cycles) are recorded on the client.
RESULT_KEY = "ping_rtt_cycles"


def make_ping_client(
    dst_mac: int,
    count: int = 100,
    interval_cycles: int = 320_000,
    ident: int = 8,
    payload_bytes: int = PING_PAYLOAD_BYTES,
    skip_first: bool = True,
) -> Callable[[ThreadAPI], ThreadBody]:
    """A ping client thread body.

    ``skip_first`` mirrors the paper's methodology: the first ping result
    of each boot is ignored because it includes the ARP resolution.
    """

    def body(api: ThreadAPI) -> ThreadBody:
        sock = api.socket(PROTO_ICMP, ident)
        for sequence in range(count):
            t_start = api.now()
            yield Send(
                dst_mac=dst_mac,
                payload="echo-request",
                payload_bytes=payload_bytes,
                proto=PROTO_ICMP,
                sport=ident,
                dport=0,
            )
            yield Recv(sock)
            rtt = api.now() - t_start
            if sequence > 0 or not skip_first:
                api.record(RESULT_KEY, rtt)
            yield Sleep(interval_cycles)

    return body
