"""SPECint-style single-node workloads (Section VIII).

FireSim's manager makes massively parallel single-node experimentation
trivial: "users can run the entire SPECint17 benchmark suite on Rocket
Chip-like systems with full reference inputs, and obtain cycle-exact
results in roughly one day" by farming one simulation per benchmark.

This module models the SPECint 2017 rate suite as
:class:`~repro.tile.rocket.ComputeBlock` profiles — dynamic instruction
counts (scaled by ``scale`` so tests stay fast; 1.0 approximates the
hundreds-of-billions-of-instructions reference inputs), memory-reference
densities, footprints, and access patterns chosen to reflect each
benchmark's character (e.g. ``mcf`` is memory-bound and random; ``xz``
streams). A thread body executes the profile on a blade's core models,
recording the cycle count the manager collects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Tuple

from repro.swmodel.kernel import ThreadAPI
from repro.swmodel.process import Compute, ThreadBody
from repro.tile.rocket import ComputeBlock
from repro.tile.soc import SoC

#: Result key: (benchmark, cycles) pairs recorded per node.
RESULT_KEY = "spec_cycles"


@dataclass(frozen=True)
class SpecBenchmark:
    """One SPECint-like benchmark's execution profile.

    Attributes:
        name: SPECint 2017 benchmark name.
        instructions: dynamic instruction count at ``scale=1.0``
            (relative magnitudes follow the suite's runtimes).
        miss_ref_fraction: memory references per instruction that escape
            the L1 (MPKI / 1000); these are the accesses the shared-L2/
            DRAM timing models price.  L1-resident traffic is folded into
            the base CPI.
        footprint_bytes: working set those references fall in.
        pattern: dominant access pattern ("seq" or "random").
    """

    name: str
    instructions: int
    miss_ref_fraction: float
    footprint_bytes: int
    pattern: str

    def block(self, scale: float) -> ComputeBlock:
        instructions = max(1, round(self.instructions * scale))
        return ComputeBlock(
            instructions=instructions,
            mem_refs=round(instructions * self.miss_ref_fraction),
            footprint_bytes=self.footprint_bytes,
            pattern=self.pattern,
        )


#: The SPECint 2017 rate suite (intrate), with profile shapes chosen to
#: reflect each benchmark's published character.
SPECINT_2017: List[SpecBenchmark] = [
    SpecBenchmark("500.perlbench_r", 1_200_000_000_000, 0.006, 200 << 20, "random"),
    SpecBenchmark("502.gcc_r", 1_100_000_000_000, 0.010, 900 << 20, "random"),
    SpecBenchmark("505.mcf_r", 900_000_000_000, 0.040, 1_600 << 20, "random"),
    SpecBenchmark("520.omnetpp_r", 1_000_000_000_000, 0.025, 250 << 20, "random"),
    SpecBenchmark("523.xalancbmk_r", 1_000_000_000_000, 0.015, 450 << 20, "random"),
    SpecBenchmark("525.x264_r", 1_300_000_000_000, 0.004, 150 << 20, "seq"),
    SpecBenchmark("531.deepsjeng_r", 1_100_000_000_000, 0.008, 700 << 20, "random"),
    SpecBenchmark("541.leela_r", 1_400_000_000_000, 0.003, 30 << 20, "random"),
    SpecBenchmark("548.exchange2_r", 1_500_000_000_000, 0.001, 1 << 20, "seq"),
    SpecBenchmark("557.xz_r", 1_200_000_000_000, 0.012, 1_100 << 20, "seq"),
]


def benchmark_by_name(name: str) -> SpecBenchmark:
    for bench in SPECINT_2017:
        if bench.name == name:
            return bench
    raise ValueError(
        f"unknown SPECint benchmark {name!r}; "
        f"known: {[b.name for b in SPECINT_2017]}"
    )


def make_spec_runner(
    benchmark: SpecBenchmark, soc: SoC, scale: float = 1e-6
) -> Callable[[ThreadAPI], ThreadBody]:
    """A thread body that executes one benchmark on a blade's core 0.

    The core timing model converts the profile into cycles (CPI + cache/
    DRAM behaviour); the thread then occupies the CPU for exactly that
    time, so scheduler interactions (e.g. co-located jobs) are visible.
    """
    if scale <= 0:
        raise ValueError("scale must be positive")

    def body(api: ThreadAPI) -> ThreadBody:
        block = benchmark.block(scale)
        cycles = soc.cores[0].execute_block(api.now(), block)
        yield Compute(cycles)
        api.record(RESULT_KEY, (benchmark.name, cycles))

    return body


def reference_cycles(benchmark: SpecBenchmark, soc: SoC, scale: float = 1e-6) -> int:
    """Cycle count of one benchmark on an idle blade (no contention)."""
    return soc.cores[0].execute_block(0, benchmark.block(scale))
