"""Bare-metal streaming benchmark (Sections IV-C and IV-D).

To separate software-stack limits from NIC hardware limits, the paper's
bare-metal test constructs Ethernet packets directly against the NIC
hardware and sends them at maximum rate to another node, which verifies
the data and acknowledges completion.  A single NIC drives ~100 Gbit/s
this way — the send-path DMA bandwidth, not the 200 Gbit/s link, is the
binding constraint.

The same sender, with the NIC's token-bucket rate limiter configured for
1/10/40/100 Gbit/s, is the traffic source for the bandwidth-saturation
experiment of Figure 6.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.net.ethernet import EthernetFrame, HEADER_BYTES, MTU_BYTES
from repro.swmodel.kernel import ThreadAPI
from repro.swmodel.process import SendRaw, Sleep, ThreadBody
from repro.swmodel.server import ServerBlade

#: Full-MTU bare-metal frame.
STREAM_FRAME_BYTES = MTU_BYTES + HEADER_BYTES

RESULT_FIRST = "stream_rx_first_cycle"
RESULT_LAST = "stream_rx_last_cycle"
RESULT_BYTES = "stream_rx_bytes"
RESULT_OK = "stream_rx_in_order"


def make_baremetal_sender(
    dst_mac: int,
    num_frames: int,
    frame_bytes: int = STREAM_FRAME_BYTES,
    start_delay_cycles: int = 0,
    batch: int = 64,
) -> Callable[[ThreadAPI], ThreadBody]:
    """Send ``num_frames`` back-to-back frames straight at the NIC.

    Descriptors are posted in small batches (like a real driver ring) so
    the NIC send queue is kept full without modeling an infinite ring.
    """

    def body(api: ThreadAPI) -> ThreadBody:
        if start_delay_cycles:
            yield Sleep(start_delay_cycles)
        api.record("stream_tx_start_cycle", api.now())
        for index in range(num_frames):
            yield SendRaw(
                dst_mac=dst_mac,
                payload=("stream", index, num_frames),
                frame_bytes=frame_bytes,
            )
            if batch and (index + 1) % batch == 0:
                # Let the event loop breathe between descriptor batches.
                yield Sleep(1)
        api.record("stream_tx_post_done_cycle", api.now())

    return body


def attach_baremetal_receiver(blade: ServerBlade) -> None:
    """Install the verifying receiver on a blade (bare-metal, no OS stack).

    Records first/last arrival cycles, total bytes, and whether frames
    arrived in order; sends a 64-byte acknowledgement back to the sender
    when the final frame arrives (Section IV-C's completion signal).
    """
    state = {"expected": 0, "in_order": True}
    results = blade.kernel.results

    def handler(cycle: int, frame: EthernetFrame) -> None:
        payload = frame.payload
        if not (isinstance(payload, tuple) and payload and payload[0] == "stream"):
            return
        _, index, total = payload
        if index != state["expected"]:
            state["in_order"] = False
        state["expected"] = index + 1
        first_list = results.setdefault(RESULT_FIRST, [])
        if not first_list:
            first_list.append(cycle)
        results.setdefault(RESULT_BYTES, [0])
        results[RESULT_BYTES][0] += frame.size_bytes
        results.setdefault(RESULT_LAST, [0])
        results[RESULT_LAST][0] = cycle
        if index == total - 1:
            results.setdefault(RESULT_OK, []).append(state["in_order"])
            ack = EthernetFrame(
                src=blade.mac,
                dst=frame.src,
                size_bytes=64,
                payload=("stream-ack", total),
            )
            blade.nic.post_send(cycle, ack)

    blade.kernel.register_raw_handler(handler)


def measured_bandwidth_bps(blade: ServerBlade, freq_hz: float) -> float:
    """Receiver-side achieved bandwidth for an attached stream receiver."""
    results = blade.kernel.results
    first = results[RESULT_FIRST][0]
    last = results[RESULT_LAST][0]
    total_bytes = results[RESULT_BYTES][0]
    if last <= first:
        raise ValueError("stream too short to measure bandwidth")
    return total_bytes * 8 * freq_hz / (last - first)
