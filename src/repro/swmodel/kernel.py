"""Kernel model: effect resolution, interrupts, sockets, syscalls.

This is the "booted Linux" of a simulated server blade: it owns the
scheduler, the network stack, and the NIC/block-device interrupt wiring,
and it resolves the effects yielded by application threads
(:mod:`repro.swmodel.process`) into CPU occupancy plus completion
actions.

The kernel never inspects token windows itself; it is driven entirely by
the blade's deterministic event queue, so every software-visible time is
an exact target cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.core.events import EventQueue
from repro.net.ethernet import EthernetFrame
from repro.nic.nic import IRQ_RX, NIC
from repro.swmodel.netstack import (
    Datagram,
    NetStackCosts,
    NetworkStack,
    Socket,
)
from repro.swmodel.process import (
    Compute,
    Recv,
    Send,
    SendRaw,
    Sleep,
    Thread,
    ThreadBody,
    ThreadState,
)
from repro.swmodel.sched import Scheduler, SchedulerConfig


class ThreadAPI:
    """The view of the kernel a thread body closes over.

    Provides timestamps, socket creation, and small helpers; all timing
    effects are expressed by *yielding* effect objects.
    """

    def __init__(self, kernel: "Kernel", thread_name: str) -> None:
        self._kernel = kernel
        self.thread_name = thread_name

    def now(self) -> int:
        """Current target cycle (exact as of the thread's last resume)."""
        return self._kernel.cycle

    def socket(self, proto: str, port: int) -> Socket:
        """Bind a new socket on this blade."""
        return self._kernel.netstack.bind(proto, port)

    @property
    def mac(self) -> int:
        return self._kernel.mac

    @property
    def num_cores(self) -> int:
        return self._kernel.scheduler.num_cores

    def record(self, key: str, value: Any) -> None:
        """Append a measurement to the blade's result store."""
        self._kernel.results.setdefault(key, []).append(value)

    def console(self, text: str) -> int:
        """Print to the blade's UART (timestamped uartlog); returns the
        cycle the final character finishes on the wire."""
        if self._kernel.uart is None:
            raise RuntimeError("this kernel has no UART attached")
        return self._kernel.uart.write(self._kernel.cycle, text)


class Kernel:
    """Per-blade OS model."""

    def __init__(
        self,
        mac: int,
        num_cores: int,
        events: EventQueue,
        nic: NIC,
        costs: Optional[NetStackCosts] = None,
        sched_config: Optional[SchedulerConfig] = None,
    ) -> None:
        self.mac = mac
        self.events = events
        self.nic = nic
        self.cycle = 0
        self.scheduler = Scheduler(
            num_cores, events, sched_config, advance_thread=self._advance_thread
        )
        self.scheduler.start_periodic_balance()
        self.netstack = NetworkStack(mac, costs)
        self.netstack.post_frame = self._post_frame
        self.netstack.submit_softirq = self._submit_softirq
        self.netstack.wake_socket_waiter = self._wake_socket_waiter
        nic.interrupt_handler = self._nic_interrupt
        #: Measurement store apps write through ``api.record``.
        self.results: Dict[str, List[Any]] = {}
        #: Console device, attached by the owning blade.
        self.uart = None
        #: Optional raw-frame handlers for bare-metal apps, keyed by a
        #: payload tag; see :meth:`register_raw_handler`.
        self._raw_handlers: List[Callable[[int, EthernetFrame], None]] = []

    # -- thread management ----------------------------------------------

    def spawn(
        self,
        name: str,
        body_fn: Callable[[ThreadAPI], ThreadBody],
        pinned_core: Optional[int] = None,
        start_cycle: int = 0,
    ) -> Thread:
        """Create a thread from a generator function and make it runnable."""
        api = ThreadAPI(self, name)
        thread = Thread(name, body_fn(api), pinned_core=pinned_core)
        self.events.schedule(
            start_cycle, lambda cy, t=thread: self._start_thread(cy, t)
        )
        return thread

    def _start_thread(self, cycle: int, thread: Thread) -> None:
        self.cycle = cycle
        # Prime the generator: install its first effect, then enqueue.
        self._install_next_effect(cycle, thread)
        if thread.state != ThreadState.DONE and thread.runnable:
            self.scheduler.add_thread(cycle, thread)
        else:
            # Blocked or sleeping from birth (e.g. a server thread whose
            # first effect is Recv): register it so the scheduler knows
            # about it; a wake will enqueue it later.
            self.scheduler.threads.append(thread)

    # -- effect resolution -----------------------------------------------

    def _advance_thread(self, cycle: int, thread: Thread) -> None:
        """Scheduler hook: current effect's CPU work finished."""
        self.cycle = cycle
        self._install_next_effect(cycle, thread)

    def _install_next_effect(self, cycle: int, thread: Thread) -> None:
        """Drive the generator until an effect needs CPU time or blocks."""
        while True:
            try:
                value, thread.wake_value = thread.wake_value, None
                effect = thread.gen.send(value)
            except StopIteration:
                thread.state = ThreadState.DONE
                return

            if isinstance(effect, Compute):
                thread.work_remaining = effect.cycles
                thread.on_work_done = None
                return
            if isinstance(effect, Send):
                self._resolve_send(cycle, thread, effect)
                return
            if isinstance(effect, SendRaw):
                self._resolve_send_raw(cycle, thread, effect)
                return
            if isinstance(effect, Recv):
                sock = effect.socket
                if sock.queue:
                    datagram = sock.queue.popleft()
                    # recv() syscall cost, then resume with the datagram.
                    thread.work_remaining = self.netstack.costs.syscall_cycles
                    thread.wake_value = datagram
                    thread.on_work_done = None
                    return
                thread.state = ThreadState.BLOCKED
                thread.blocked_socket = sock
                if sock.waiting_thread is not None:
                    raise RuntimeError(
                        f"socket {sock.proto}/{sock.port} already has a waiter"
                    )
                sock.waiting_thread = thread
                return
            if isinstance(effect, Sleep):
                thread.state = ThreadState.SLEEPING
                self.events.schedule(
                    cycle + effect.cycles,
                    lambda cy, t=thread: self._wake_from_sleep(cy, t),
                )
                return
            raise TypeError(
                f"thread {thread.name!r} yielded unknown effect {effect!r}"
            )

    def _resolve_send(self, cycle: int, thread: Thread, effect: Send) -> None:
        costs = self.netstack.costs
        datagram = Datagram(
            proto=effect.proto,
            sport=effect.sport,
            dport=effect.dport,
            payload=effect.payload,
            payload_bytes=effect.payload_bytes,
            conn_id=effect.conn_id,
            app_send_cycle=cycle,
        )
        thread.work_remaining = costs.syscall_cycles + costs.tx_cost(effect.proto)
        thread.on_work_done = (
            lambda cy, d=datagram, dst=effect.dst_mac: self.netstack.send(cy, dst, d)
        )

    def _resolve_send_raw(self, cycle: int, thread: Thread, effect: SendRaw) -> None:
        """Bare-metal transmit: a descriptor write, no protocol stack."""
        frame = EthernetFrame(
            src=self.mac,
            dst=effect.dst_mac,
            size_bytes=effect.frame_bytes,
            payload=effect.payload,
        )
        thread.work_remaining = 64  # MMIO descriptor write
        thread.on_work_done = lambda cy, f=frame: self.nic.post_send(cy, f)

    # -- wakeups ------------------------------------------------------------

    def _wake_from_sleep(self, cycle: int, thread: Thread) -> None:
        self.cycle = cycle
        if thread.state == ThreadState.SLEEPING:
            self.scheduler.wake(cycle, thread)

    def _wake_socket_waiter(self, cycle: int, sock: Socket) -> None:
        thread = sock.waiting_thread
        if thread is None or not sock.queue:
            return
        sock.waiting_thread = None
        thread.blocked_socket = None
        datagram = sock.queue.popleft()
        # The woken thread pays the recv() return path.
        thread.work_remaining = self.netstack.costs.syscall_cycles
        thread.on_work_done = None
        self.scheduler.wake(cycle, thread, value=datagram)

    # -- NIC / softirq wiring -----------------------------------------------

    def _post_frame(self, cycle: int, frame: EthernetFrame) -> None:
        self.nic.post_send(cycle, frame)

    def _submit_softirq(
        self, cycle: int, cost: int, on_done: Callable[[int], None]
    ) -> None:
        self.scheduler.submit_softirq(cycle, cost, on_done)

    def _nic_interrupt(
        self, cycle: int, kind: str, frame: Optional[EthernetFrame]
    ) -> None:
        if kind != IRQ_RX or frame is None:
            return
        # Driver model: the IRQ handler re-posts the consumed receive
        # buffer, keeping the descriptor ring full (drops then only come
        # from the NIC packet buffer, the paper's drop mechanism).
        self.nic.post_recv_descriptors(cycle, 1)
        if isinstance(frame.payload, Datagram):
            self.events.schedule(
                cycle, lambda cy, f=frame: self.netstack.handle_rx_frame(cy, f)
            )
        else:
            for handler in self._raw_handlers:
                self.events.schedule(
                    cycle, lambda cy, f=frame, h=handler: h(cy, f)
                )

    def register_raw_handler(
        self, handler: Callable[[int, EthernetFrame], None]
    ) -> None:
        """Bare-metal apps receive non-Datagram frames through this hook."""
        self._raw_handlers.append(handler)
