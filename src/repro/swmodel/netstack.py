"""OS network stack timing model.

FireSim runs a real (if immature) RISC-V Linux port with a custom NIC
driver (Section III-A2); the evaluation attributes the ≈34 us ping
overhead (Section IV-A) and the 1.4 Gbit/s iperf3 TCP ceiling (Section
IV-B) to this software stack, not the NIC hardware — the bare-metal test
(Section IV-C) drives 100 Gbit/s from the same NIC.

This module reproduces the stack as per-packet CPU costs wired into the
scheduler:

* transmit costs are charged to the sending thread (syscall + protocol
  processing + driver), then the frame is posted to the NIC;
* receive costs are charged as softirq work on the IRQ core, after which
  the datagram is delivered to the destination socket and any blocked
  thread is woken;
* ICMP echo requests are answered entirely in kernel context on the
  receiver (no userspace), exactly like Linux's icmp_echo path;
* TCP is modeled as a CPU-cost-bound stream with delayed ACKs and no
  loss (the simulated switch buffers are sized so the validation streams
  do not drop); there is deliberately no congestion-window model because
  the measured ceiling is CPU-bound.

The default costs are calibrated so a ping RTT carries ~34 us of software
overhead and a single-stream TCP transfer tops out near 1.4 Gbit/s — the
paper's measured values.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, Optional, Tuple

from repro.net.ethernet import (
    EthernetFrame,
    HEADER_BYTES,
    ICMP_HEADER_BYTES,
    IP_TCP_HEADER_BYTES,
    IP_UDP_HEADER_BYTES,
)

PROTO_UDP = "udp"
PROTO_TCP = "tcp"
PROTO_ICMP = "icmp"
PROTO_RAW = "raw"

_HEADER_FOR_PROTO = {
    PROTO_UDP: HEADER_BYTES + IP_UDP_HEADER_BYTES,
    PROTO_TCP: HEADER_BYTES + IP_TCP_HEADER_BYTES,
    PROTO_ICMP: HEADER_BYTES + 20 + ICMP_HEADER_BYTES,
    PROTO_RAW: HEADER_BYTES,
}


@dataclass(frozen=True)
class NetStackCosts:
    """Per-packet CPU costs in target cycles (3.2 GHz Rocket).

    The immature single-issue in-order RISC-V port makes these large;
    they are the knobs that set the measured ping offset and TCP ceiling.
    """

    syscall_cycles: int = 1_600  # ~0.5 us user/kernel crossing
    udp_tx_cycles: int = 25_600  # ~8.0 us protocol + driver transmit
    udp_rx_cycles: int = 12_800  # ~4.0 us softirq receive processing
    icmp_tx_cycles: int = 25_600
    icmp_rx_cycles: int = 25_600
    tcp_tx_cycles: int = 22_400  # with syscall+ACK processing: ~8.0 us/segment
    tcp_rx_cycles: int = 22_400  # softirq receive keeps up with the sender
    ack_tx_cycles: int = 3_200  # delayed-ACK generation in softirq
    ack_rx_cycles: int = 1_600
    deliver_cycles: int = 1_600  # socket wakeup + copy to userspace

    def tx_cost(self, proto: str) -> int:
        return {
            PROTO_UDP: self.udp_tx_cycles,
            PROTO_TCP: self.tcp_tx_cycles,
            PROTO_ICMP: self.icmp_tx_cycles,
        }[proto]

    def rx_cost(self, proto: str) -> int:
        return {
            PROTO_UDP: self.udp_rx_cycles,
            PROTO_TCP: self.tcp_rx_cycles,
            PROTO_ICMP: self.icmp_rx_cycles,
        }[proto]


_datagram_seq = itertools.count()


@dataclass
class Datagram:
    """One transport-level message (the payload of an Ethernet frame)."""

    proto: str
    sport: int
    dport: int
    payload: Any
    payload_bytes: int
    src_mac: int = 0
    conn_id: int = 0
    #: Cycle at which the sending *application* issued the send; latency
    #: probes (ping, mutilate) measure against this.
    app_send_cycle: int = 0
    #: Cycle at which the receiving application got the datagram.
    app_recv_cycle: int = 0
    seq: int = field(default_factory=lambda: next(_datagram_seq))

    @property
    def wire_bytes(self) -> int:
        return self.payload_bytes + _HEADER_FOR_PROTO[self.proto]


class Socket:
    """A bound (proto, port) endpoint with a receive queue."""

    def __init__(self, proto: str, port: int) -> None:
        self.proto = proto
        self.port = port
        self.queue: Deque[Datagram] = deque()
        self.waiting_thread = None  # type: Optional[object]
        self.dropped = 0
        #: Bound on queued datagrams (listen backlog / socket buffer).
        self.max_queue = 4096

    def deliver(self, datagram: Datagram) -> bool:
        if len(self.queue) >= self.max_queue:
            self.dropped += 1
            return False
        self.queue.append(datagram)
        return True


@dataclass
class NetStackStats:
    tx_datagrams: int = 0
    rx_datagrams: int = 0
    rx_no_socket: int = 0
    icmp_echoes_answered: int = 0
    acks_sent: int = 0


class NetworkStack:
    """The blade-local protocol stack bound to one NIC.

    The owning :class:`~repro.swmodel.kernel.Kernel` supplies callbacks
    for posting frames to the NIC, queueing softirq work, and waking
    threads, so this class holds protocol logic and costs only.
    """

    def __init__(
        self,
        mac: int,
        costs: Optional[NetStackCosts] = None,
    ) -> None:
        self.mac = mac
        self.costs = costs or NetStackCosts()
        self.sockets: Dict[Tuple[str, int], Socket] = {}
        self.stats = NetStackStats()
        # Wired by the kernel at boot.
        self.post_frame: Callable[[int, EthernetFrame], None] = _unwired
        self.submit_softirq: Callable[[int, int, Callable[[int], None]], None] = _unwired
        self.wake_socket_waiter: Callable[[int, Socket], None] = _unwired
        #: Count of TCP segments since the last delayed ACK, per peer MAC.
        self._unacked: Dict[int, int] = {}
        self.ack_every = 2

    # -- sockets ----------------------------------------------------------

    def bind(self, proto: str, port: int) -> Socket:
        key = (proto, port)
        if key in self.sockets:
            raise ValueError(f"port {port}/{proto} already bound")
        sock = Socket(proto, port)
        self.sockets[key] = sock
        return sock

    def close(self, sock: Socket) -> None:
        self.sockets.pop((sock.proto, sock.port), None)

    # -- transmit ---------------------------------------------------------

    def send(self, cycle: int, dst_mac: int, datagram: Datagram) -> None:
        """Hand a fully-costed datagram to the NIC as an Ethernet frame.

        The caller (kernel) has already charged the thread the protocol's
        transmit cost; this is the driver handoff.
        """
        datagram.src_mac = self.mac
        frame = EthernetFrame(
            src=self.mac,
            dst=dst_mac,
            size_bytes=datagram.wire_bytes,
            payload=datagram,
        )
        self.stats.tx_datagrams += 1
        self.post_frame(cycle, frame)

    # -- receive (softirq context) ---------------------------------------

    def handle_rx_frame(self, cycle: int, frame: EthernetFrame) -> None:
        """NIC RX interrupt: queue softirq processing for the frame."""
        datagram = frame.payload
        if not isinstance(datagram, Datagram):
            return  # raw/bare-metal frames are handled by their apps
        if datagram.proto == PROTO_TCP and datagram.payload == "ack":
            cost = self.costs.ack_rx_cycles
        else:
            cost = self.costs.rx_cost(datagram.proto)
        self.submit_softirq(
            cycle, cost, lambda cy, d=datagram, f=frame: self._rx_softirq(cy, d, f)
        )

    def _rx_softirq(self, cycle: int, datagram: Datagram, frame: EthernetFrame) -> None:
        self.stats.rx_datagrams += 1
        if datagram.proto == PROTO_ICMP and datagram.payload == "echo-request":
            self._answer_echo(cycle, datagram, frame)
            return
        if datagram.proto == PROTO_TCP:
            if datagram.payload == "ack":
                return  # pure ACK: bookkeeping only, never re-ACKed
            self._maybe_ack(cycle, frame.src)
        sock = self.sockets.get((datagram.proto, datagram.dport))
        if sock is None:
            self.stats.rx_no_socket += 1
            return
        # Delivery cost (wakeup + copy) runs in the same softirq context.
        self.submit_softirq(
            cycle,
            self.costs.deliver_cycles,
            lambda cy, s=sock, d=datagram: self._deliver(cy, s, d),
        )

    def _deliver(self, cycle: int, sock: Socket, datagram: Datagram) -> None:
        datagram.app_recv_cycle = cycle
        if sock.deliver(datagram):
            self.wake_socket_waiter(cycle, sock)

    def _answer_echo(self, cycle: int, request: Datagram, frame: EthernetFrame) -> None:
        """In-kernel ICMP echo reply (Linux answers pings in softirq)."""
        self.stats.icmp_echoes_answered += 1
        reply = Datagram(
            proto=PROTO_ICMP,
            sport=request.dport,
            dport=request.sport,
            payload=("echo-reply", request.payload, request.seq),
            payload_bytes=request.payload_bytes,
            app_send_cycle=request.app_send_cycle,
        )
        self.submit_softirq(
            cycle,
            self.costs.icmp_tx_cycles,
            lambda cy, d=reply, dst=frame.src: self.send(cy, dst, d),
        )

    def _maybe_ack(self, cycle: int, peer_mac: int) -> None:
        count = self._unacked.get(peer_mac, 0) + 1
        if count >= self.ack_every:
            self._unacked[peer_mac] = 0
            self.stats.acks_sent += 1
            ack = Datagram(
                proto=PROTO_TCP,
                sport=0,
                dport=-1,  # pure ACK: no socket delivery at the peer
                payload="ack",
                payload_bytes=0,
            )
            self.submit_softirq(
                cycle,
                self.costs.ack_tx_cycles,
                lambda cy, d=ack, dst=peer_mac: self.send(cy, dst, d),
            )
        else:
            self._unacked[peer_mac] = count


def _unwired(*_args, **_kwargs):  # pragma: no cover - defensive default
    raise RuntimeError(
        "NetworkStack used before the kernel wired its callbacks"
    )
