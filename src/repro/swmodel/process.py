"""Threads and effects: the software execution model.

FireSim boots real Linux and runs real binaries on the simulated RTL.  In
this reproduction, software is modeled as *threads* written as Python
generators that yield timing-bearing effects to the kernel model:

* :class:`Compute` — burn CPU cycles (preemptible, chunked);
* :class:`Send` — transmit a datagram through the network stack (charges
  the protocol's per-packet CPU cost, then hands the frame to the NIC);
* :class:`SendRaw` — bare-metal transmit straight to NIC MMIO, bypassing
  the OS network stack (the Section IV-C bandwidth test does this);
* :class:`Recv` — block until a datagram arrives on a socket;
* :class:`Sleep` — block for a duration of target time.

The kernel (:mod:`repro.swmodel.kernel`) resolves each effect into CPU
occupancy on a core plus a completion action, so all software costs flow
through the scheduler and contend for the blade's 1-4 Rocket cores.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.swmodel.netstack import Socket


# -- effects ------------------------------------------------------------


@dataclass(frozen=True)
class Compute:
    """Burn ``cycles`` of CPU time on whatever core runs the thread."""

    cycles: int

    def __post_init__(self) -> None:
        if self.cycles < 0:
            raise ValueError(f"compute cycles must be >= 0, got {self.cycles}")


@dataclass(frozen=True)
class Send:
    """Send one datagram via the OS network stack (UDP/TCP/ICMP model)."""

    dst_mac: int
    payload: Any
    payload_bytes: int
    proto: str = "udp"
    sport: int = 0
    dport: int = 0
    conn_id: int = 0


@dataclass(frozen=True)
class SendRaw:
    """Bare-metal transmit: build Ethernet frames directly at the NIC."""

    dst_mac: int
    payload: Any
    frame_bytes: int


@dataclass(frozen=True)
class Recv:
    """Block until a datagram arrives on ``socket``; yields the datagram."""

    socket: "Socket"


@dataclass(frozen=True)
class Sleep:
    """Block for ``cycles`` of target time without occupying a core."""

    cycles: int

    def __post_init__(self) -> None:
        if self.cycles < 0:
            raise ValueError(f"sleep cycles must be >= 0, got {self.cycles}")


Effect = Any  # union of the effect classes above
ThreadBody = Generator[Effect, Any, None]


class ThreadState(enum.Enum):
    READY = "ready"
    RUNNING = "running"
    BLOCKED = "blocked"
    SLEEPING = "sleeping"
    DONE = "done"


class Thread:
    """One schedulable software thread.

    Attributes:
        name: for traces and tests.
        gen: the generator body yielding effects.
        pinned_core: if set, the thread only ever runs on this core
            (the "4 threads pinned" configuration of Figure 7).
        last_core: where the thread last ran; wake placement is sticky
            toward it, which is the source of the poor-placement tail
            behaviour the paper reproduces from Leverich & Kozyrakis.
    """

    _ids = iter(range(1, 1 << 30))

    def __init__(
        self,
        name: str,
        gen: ThreadBody,
        pinned_core: Optional[int] = None,
    ) -> None:
        self.name = name
        self.gen = gen
        self.pinned_core = pinned_core
        self.tid = next(Thread._ids)
        self.state = ThreadState.READY
        self.last_core = 0
        # CPU work outstanding for the current effect.
        self.work_remaining = 0
        # Action to run when the current effect's CPU work completes.
        self.on_work_done: Optional[Callable[[int], None]] = None
        # Value handed to the generator at the next resume (Recv results).
        self.wake_value: Any = None
        # Remaining scheduler timeslice.
        self.slice_remaining = 0
        # Cycle at which the thread last entered a runqueue (idle
        # balancing refuses to migrate cache-hot threads younger than
        # the migration cost).
        self.enqueued_at = 0
        # Set while blocked in Recv.
        self.blocked_socket: Optional["Socket"] = None
        # Accumulated statistics.
        self.cpu_cycles = 0
        self.context_switches = 0

    @property
    def runnable(self) -> bool:
        return self.state in (ThreadState.READY, ThreadState.RUNNING)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Thread({self.name!r}, {self.state.value})"
