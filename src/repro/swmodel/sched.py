"""Kernel CPU scheduler model.

A CFS-flavoured scheduler over the blade's Rocket cores, with the three
behaviours the memcached QoS experiment (Section IV-E, Figure 7) depends
on:

* **Timeslices** — a runnable thread that loses the race for a core waits
  until a running thread's timeslice expires; with more threads than
  cores this is what inflates tail latency while leaving the median
  untouched.
* **Sticky wake placement** — a waking thread prefers its previous core
  if that core's load is within one of the minimum, even when an idle
  core exists.  This reproduces the "poor thread placement" that makes
  the unpinned 4-thread configuration track the 5-thread tail at low to
  medium load.
* **Pinning** — a pinned thread always wakes on its pinned core,
  smoothing the tail (the "4 threads pinned" line).

Softirq work (NIC receive processing) runs at higher priority on the IRQ
core and preempts threads at compute-chunk granularity, bounding
interrupt latency at ``preempt_quantum`` cycles.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, List, Optional

from repro.core.events import EventQueue
from repro.swmodel.process import Thread, ThreadState


@dataclass(frozen=True)
class SchedulerConfig:
    """Scheduler timing parameters (target cycles at 3.2 GHz).

    Defaults: 1 ms timeslice, 4 us preemption-check granularity, ~0.6 us
    context-switch cost.
    """

    timeslice_cycles: int = 3_200_000
    preempt_quantum_cycles: int = 12_800
    context_switch_cycles: int = 2_000
    irq_core: int = 0
    #: Cache-hot threshold: idle balancing will not migrate a thread that
    #: entered a runqueue more recently than this (Linux's
    #: sched_migration_cost, ~0.5 ms).
    migration_cost_cycles: int = 1_600_000
    #: Periodic load-balancer interval (~2 ms).
    balance_interval_cycles: int = 6_400_000
    #: Sticky wake placement (Linux wake-affinity-like).  Disabling it is
    #: the scheduler ablation: waking threads always take the least-loaded
    #: core, removing the poor-placement stacking behind Figure 7's
    #: unpinned-4-thread tail.
    sticky_wake: bool = True


@dataclass
class SoftirqItem:
    """One unit of high-priority kernel work (e.g. NIC RX processing)."""

    remaining: int
    on_done: Callable[[int], None]


@dataclass
class _CoreState:
    index: int
    running_thread: Optional[Thread] = None
    running_softirq: Optional[SoftirqItem] = None
    busy: bool = False
    idle_cycles: int = 0
    busy_until: int = 0


class Scheduler:
    """Event-driven multicore scheduler."""

    def __init__(
        self,
        num_cores: int,
        events: EventQueue,
        config: Optional[SchedulerConfig] = None,
        advance_thread: Optional[Callable[[int, Thread], None]] = None,
    ) -> None:
        if num_cores < 1:
            raise ValueError(f"need at least one core, got {num_cores}")
        self.config = config or SchedulerConfig()
        if not 0 <= self.config.irq_core < num_cores:
            raise ValueError("irq core index out of range")
        self.events = events
        self.cores = [_CoreState(i) for i in range(num_cores)]
        self.runqueues: List[Deque[Thread]] = [deque() for _ in range(num_cores)]
        # Per-core softirq queues: NIC RX work is spread round-robin
        # across cores (RSS/multiqueue steering), so network processing
        # load is symmetric rather than poisoning one core.
        self.softirq_queues: List[Deque[SoftirqItem]] = [
            deque() for _ in range(num_cores)
        ]
        self._rss_counter = 0
        # Kernel hook: called when a thread's current effect finishes its
        # CPU work, to advance the generator and install the next effect.
        self.advance_thread = advance_thread
        self.threads: List[Thread] = []

    @property
    def num_cores(self) -> int:
        return len(self.cores)

    # -- thread lifecycle ----------------------------------------------

    def add_thread(self, cycle: int, thread: Thread) -> None:
        if thread.pinned_core is not None and not (
            0 <= thread.pinned_core < self.num_cores
        ):
            raise ValueError(
                f"thread {thread.name!r} pinned to nonexistent core "
                f"{thread.pinned_core}"
            )
        self.threads.append(thread)
        self.wake(cycle, thread)

    def wake(self, cycle: int, thread: Thread, value: object = None) -> None:
        """Make a thread runnable and place it on a core's runqueue."""
        if thread.state == ThreadState.DONE:
            return
        if value is not None:
            thread.wake_value = value
        thread.state = ThreadState.READY
        core = self._place(thread)
        thread.last_core = core
        thread.enqueued_at = cycle
        self.runqueues[core].append(thread)
        self._kick(core, cycle)

    def _place(self, thread: Thread) -> int:
        if thread.pinned_core is not None:
            return thread.pinned_core
        loads = [
            len(self.runqueues[c.index]) + (1 if c.running_thread else 0)
            for c in self.cores
        ]
        min_load = min(loads)
        # Sticky wake placement: stay on the previous core when it is
        # within one of the least-loaded core — even if another core is
        # fully idle.  This is the placement-quality behaviour behind the
        # unpinned 4-thread tail anomaly (Figure 7).
        if self.config.sticky_wake and loads[thread.last_core] <= min_load + 1:
            return thread.last_core
        return loads.index(min_load)

    # -- softirq ------------------------------------------------------------

    def submit_softirq(self, cycle: int, cost_cycles: int, on_done: Callable[[int], None]) -> None:
        """Queue high-priority kernel work (RSS round-robin steering)."""
        if cost_cycles < 0:
            raise ValueError("softirq cost must be >= 0")
        core_index = self._rss_counter % self.num_cores
        self._rss_counter += 1
        self.softirq_queues[core_index].append(SoftirqItem(cost_cycles, on_done))
        self._kick(core_index, cycle)

    # -- dispatch -------------------------------------------------------

    def _kick(self, core_index: int, cycle: int) -> None:
        core = self.cores[core_index]
        if not core.busy:
            # Dispatch via the event queue at the current cycle so all
            # scheduling decisions happen in deterministic event order.
            core.busy = True
            self.events.schedule(cycle, lambda cy, c=core: self._dispatch(cy, c))

    def _dispatch(self, cycle: int, core: _CoreState) -> None:
        """Pick and run the next unit of work on an idle core."""
        # Softirq work has priority over threads on its steered core.
        if self.softirq_queues[core.index]:
            item = self.softirq_queues[core.index].popleft()
            core.running_softirq = item
            chunk = min(item.remaining, self.config.preempt_quantum_cycles)
            chunk = max(chunk, 1)
            self.events.schedule(
                cycle + chunk,
                lambda cy, c=core, it=item, ch=chunk: self._softirq_chunk_done(cy, c, it, ch),
            )
            return

        queue = self.runqueues[core.index]
        thread = None
        while queue:
            candidate = queue.popleft()
            if candidate.state == ThreadState.READY:
                thread = candidate
                break
        if thread is None:
            thread = self._steal_for(core, cycle)
        if thread is None:
            core.busy = False
            core.running_thread = None
            return

        thread.state = ThreadState.RUNNING
        thread.last_core = core.index
        thread.slice_remaining = self.config.timeslice_cycles
        thread.context_switches += 1
        core.running_thread = thread
        self._run_chunk(cycle + self.config.context_switch_cycles, core, thread)

    def _run_chunk(self, cycle: int, core: _CoreState, thread: Thread) -> None:
        if thread.work_remaining <= 0 and self.advance_thread is not None:
            # Effect completed exactly at dispatch: advance immediately.
            self._complete_work(cycle, core, thread)
            return
        chunk = min(
            thread.work_remaining,
            self.config.preempt_quantum_cycles,
            max(thread.slice_remaining, 1),
        )
        chunk = max(chunk, 1)
        self.events.schedule(
            cycle + chunk,
            lambda cy, c=core, t=thread, ch=chunk: self._chunk_done(cy, c, t, ch),
        )

    def _chunk_done(self, cycle: int, core: _CoreState, thread: Thread, chunk: int) -> None:
        thread.work_remaining -= chunk
        thread.slice_remaining -= chunk
        thread.cpu_cycles += chunk
        if thread.work_remaining <= 0:
            self._complete_work(cycle, core, thread)
            return
        self._maybe_continue(cycle, core, thread)

    def _complete_work(self, cycle: int, core: _CoreState, thread: Thread) -> None:
        if thread.on_work_done is not None:
            action = thread.on_work_done
            thread.on_work_done = None
            action(cycle)
        if thread.state == ThreadState.RUNNING:
            if self.advance_thread is not None:
                # Ask the kernel to install the next effect.
                self.advance_thread(cycle, thread)
            else:
                # No kernel attached (bare scheduler tests): the thread's
                # work is its whole life.
                thread.state = ThreadState.DONE
        if thread.state == ThreadState.RUNNING:
            self._maybe_continue(cycle, core, thread)
        else:
            # Thread blocked, slept, or exited: free the core.
            core.running_thread = None
            self._dispatch(cycle, core)

    def _maybe_continue(self, cycle: int, core: _CoreState, thread: Thread) -> None:
        softirq_pending = bool(self.softirq_queues[core.index])
        contended = bool(self.runqueues[core.index]) or softirq_pending
        if contended and thread.slice_remaining <= 0:
            # Timeslice expired with waiters: requeue (possibly migrating
            # to the least-loaded core) and dispatch the next work unit.
            thread.state = ThreadState.READY
            core.running_thread = None
            target = self._rebalance_target(thread)
            thread.last_core = target
            thread.enqueued_at = cycle
            self.runqueues[target].append(thread)
            if target != core.index:
                self._kick(target, cycle)
            self._dispatch(cycle, core)
            return
        if softirq_pending:
            # Softirq preempts the thread at chunk granularity; the thread
            # keeps its slice and returns to the head of the queue.
            thread.state = ThreadState.READY
            core.running_thread = None
            thread.enqueued_at = cycle
            self.runqueues[core.index].appendleft(thread)
            self._dispatch(cycle, core)
            return
        self._run_chunk(cycle, core, thread)

    def _stealable(self, thread: Thread, cycle: int) -> bool:
        return (
            thread.state == ThreadState.READY
            and thread.pinned_core is None
            and cycle - thread.enqueued_at >= self.config.migration_cost_cycles
        )

    def _steal_for(self, core: _CoreState, cycle: int) -> Optional[Thread]:
        """Idle balancing: pull a runnable, unpinned, *cache-cold* thread
        from the most loaded other runqueue (Linux's idle_balance with
        sched_migration_cost).  Cache-hot threads are left in place; the
        periodic balancer cleans up persistent imbalance instead."""
        best_queue = None
        best_len = 0
        for other in self.cores:
            if other.index == core.index:
                continue
            queue = self.runqueues[other.index]
            stealable = sum(1 for t in queue if self._stealable(t, cycle))
            if stealable > best_len:
                best_len = stealable
                best_queue = queue
        if best_queue is None:
            return None
        for candidate in list(best_queue):
            if self._stealable(candidate, cycle):
                best_queue.remove(candidate)
                candidate.last_core = core.index
                return candidate
        return None

    # -- periodic load balancing ------------------------------------------

    def start_periodic_balance(self, first_cycle: int = 0) -> None:
        """Arm the periodic balancer (Linux's rebalance_domains)."""
        self.events.schedule(
            first_cycle + self.config.balance_interval_cycles,
            self._periodic_balance,
        )

    def _load_of(self, core_index: int) -> int:
        running = 1 if self.cores[core_index].running_thread else 0
        return len(self.runqueues[core_index]) + running

    def _periodic_balance(self, cycle: int) -> None:
        """Move queued unpinned threads from overloaded to underloaded
        cores until no pair differs by two or more."""
        for _ in range(self.num_cores):
            loads = [self._load_of(c) for c in range(self.num_cores)]
            busiest = max(range(self.num_cores), key=lambda c: loads[c])
            idlest = min(range(self.num_cores), key=lambda c: loads[c])
            if loads[busiest] - loads[idlest] < 2:
                break
            moved = None
            for candidate in self.runqueues[busiest]:
                if (
                    candidate.state == ThreadState.READY
                    and candidate.pinned_core is None
                ):
                    moved = candidate
                    break
            if moved is None:
                break
            self.runqueues[busiest].remove(moved)
            moved.last_core = idlest
            moved.enqueued_at = cycle
            self.runqueues[idlest].append(moved)
            self._kick(idlest, cycle)
        self.events.schedule(
            cycle + self.config.balance_interval_cycles, self._periodic_balance
        )

    def _rebalance_target(self, thread: Thread) -> int:
        if thread.pinned_core is not None:
            return thread.pinned_core
        loads = [
            len(self.runqueues[c.index]) + (1 if c.running_thread else 0)
            for c in self.cores
        ]
        return loads.index(min(loads))

    def _softirq_chunk_done(
        self, cycle: int, core: _CoreState, item: SoftirqItem, chunk: int
    ) -> None:
        item.remaining -= chunk
        if item.remaining > 0:
            chunk = min(item.remaining, self.config.preempt_quantum_cycles)
            self.events.schedule(
                cycle + chunk,
                lambda cy, c=core, it=item, ch=chunk: self._softirq_chunk_done(cy, c, it, ch),
            )
            return
        core.running_softirq = None
        item.on_done(cycle)
        self._dispatch(cycle, core)

    # -- inspection -------------------------------------------------------

    def runnable_threads(self) -> int:
        return sum(1 for t in self.threads if t.runnable)
