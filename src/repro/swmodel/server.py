"""Server blade: the FAME-1 simulation endpoint for one target server.

A blade bundles the elaborated SoC (cores/caches/DRAM), the NIC, the
block device, and the kernel model, and exposes a single FAME-1 ``net``
port carrying one token per target cycle (Section III-A: the "FAME-1
Rocket Chip" box of Figure 2 plus its NIC simulation endpoint).

Per token window the blade:

1. feeds the input tokens to the NIC receive path (packet buffer, writer
   DMA, completion interrupts);
2. runs its deterministic event queue — scheduler dispatches, softirq
   work, application effects — up to the window's end;
3. drains the NIC send path into the output token window, paced by the
   rate limiter.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Union

from repro.blockdev.controller import BlockDeviceConfig, BlockDeviceController
from repro.core.events import EventQueue
from repro.core.fame import Fame1Model
from repro.core.token import TokenBatch, TokenWindow
from repro.net.ethernet import mac_address
from repro.nic.nic import NIC, NICConfig
from repro.swmodel.kernel import Kernel, ThreadAPI
from repro.swmodel.netstack import NetStackCosts
from repro.swmodel.process import Thread, ThreadBody
from repro.swmodel.sched import SchedulerConfig
from repro.tile.soc import RocketChipConfig, SoC, config_by_name
from repro.tile.uart import UART, UARTConfig


class ServerBlade(Fame1Model):
    """One simulated server: SoC + NIC + block device + booted kernel."""

    def __init__(
        self,
        name: str,
        config: Union[str, RocketChipConfig] = "QuadCore",
        mac: Optional[int] = None,
        node_index: int = 0,
        nic_config: Optional[NICConfig] = None,
        net_costs: Optional[NetStackCosts] = None,
        sched_config: Optional[SchedulerConfig] = None,
        blockdev_config: Optional[BlockDeviceConfig] = None,
        seed: int = 0,
    ) -> None:
        super().__init__(name, ["net"])
        if isinstance(config, str):
            config = config_by_name(config)
        self.config = config
        self.node_index = node_index
        self.mac = mac if mac is not None else mac_address(node_index)
        self.soc: SoC = config.build(seed=seed)
        self.events = EventQueue()
        self.nic = NIC(f"{name}.nic", self.soc.dma_hierarchy, nic_config)
        self.uart = UART(f"{name}.uart", UARTConfig(freq_hz=config.freq_hz))
        self.blockdev = BlockDeviceController(
            f"{name}.blkdev", self.soc.dma_hierarchy, blockdev_config
        )
        self.kernel = Kernel(
            mac=self.mac,
            num_cores=config.num_cores,
            events=self.events,
            nic=self.nic,
            costs=net_costs,
            sched_config=sched_config,
        )
        self.kernel.uart = self.uart
        # Idle-window elision is sound only for the stock tick/NIC paths:
        # with zero input tokens, an empty TX queue, and no event due
        # before the window's end, the tick is provably a no-op (empty
        # receive touches nothing; fill_tx on an empty queue only moves
        # the emit cursor, which the next real fill re-derives via max).
        cls = type(self)
        self._idle_safe = (
            cls._tick is ServerBlade._tick
            and type(self.nic).receive_tokens is NIC.receive_tokens
            and type(self.nic).fill_tx is NIC.fill_tx
        )

    # -- software attachment ---------------------------------------------

    def spawn(
        self,
        name: str,
        body_fn: Callable[[ThreadAPI], ThreadBody],
        pinned_core: Optional[int] = None,
        start_cycle: int = 0,
    ) -> Thread:
        """Start an application thread on this blade's kernel."""
        return self.kernel.spawn(
            name, body_fn, pinned_core=pinned_core, start_cycle=start_cycle
        )

    @property
    def results(self) -> Dict[str, list]:
        """Measurements recorded by application threads."""
        return self.kernel.results

    # -- telemetry ---------------------------------------------------------

    def register_metrics(self, registry, prefix: Optional[str] = None) -> None:
        """Register this blade's activity counters under ``blade.<name>.*``.

        Covers the same counters Strober samples: per-core commit stats,
        L1/L2 caches, DRAM, and the NIC.
        """
        prefix = prefix or f"blade.{self.name}"
        for core_id, core in enumerate(self.soc.cores):
            registry.register_source(f"{prefix}.core{core_id}", core.stats)
        for core_id, l1d in enumerate(self.soc.l1ds):
            registry.register_source(f"{prefix}.l1d{core_id}", l1d.stats)
        registry.register_source(f"{prefix}.l2", self.soc.l2.stats)
        registry.register_source(f"{prefix}.dram", self.soc.dram.stats)
        self.nic.register_metrics(registry, f"{prefix}.nic")

    # -- FAME-1 ------------------------------------------------------------

    def _tick(
        self, window: TokenWindow, inputs: Dict[str, TokenBatch]
    ) -> Dict[str, TokenBatch]:
        self.nic.receive_tokens(inputs["net"])
        self.events.run_until(window.end)
        out = window.new_batch()
        self.nic.fill_tx(window, out)
        return {"net": out}

    def idle_outputs(
        self, window: TokenWindow
    ) -> Optional[Dict[str, TokenBatch]]:
        """All-empty output when the window provably runs no work.

        Quiet blades dominate wall-clock once traffic dies down (the
        Figure 8 runs spend most cycles post-benchmark); a blade whose
        event queue has nothing due before ``window.end`` and whose NIC
        has nothing queued to send skips the tick entirely.
        """
        if not self._idle_safe or self.nic._tx_queue:
            return None
        next_cycle = self.events.next_cycle()
        if next_cycle is not None and next_cycle < window.end:
            return None
        return {"net": window.new_batch()}

    def idle_horizon(self) -> Optional[int]:
        """First cycle this blade acts without input: its next event.

        Nothing else can wake a quiet blade — receives need valid
        tokens, transmits need a prior event or receive — so the event
        queue's head bounds how far the batched engine may fast-forward
        (see :meth:`Fame1Model.idle_outputs`).
        """
        if not self._idle_safe or self.nic._tx_queue:
            return self.current_cycle
        return self.events.next_cycle()
