"""Server SoC timing models: Rocket cores, caches, DRAM, TileLink, RoCC, UART."""
