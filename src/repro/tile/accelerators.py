"""RoCC accelerators for custom blades (Table II).

Rocket Chip supports attaching custom accelerators over the RoCC
interface.  The paper's Table II lists the accelerators used for custom
datacenter blades:

* **Page-Fault Accelerator** — remote-memory fast path (Section VI); the
  behavioural model lives in :mod:`repro.pfa`, registered here so blade
  configurations can name it.
* **Hwacha** — the vector-fetch data-parallel accelerator (Section VIII),
  modeled as an Amdahl-style speedup on the vectorizable fraction of a
  compute block.
* **HLS-generated** — FireSim can transform Verilog emitted by HLS tools
  into plug-in accelerators; modeled as a fixed-function unit with an
  invocation latency and per-byte throughput.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, Type

from repro.tile.rocket import ComputeBlock


class RoCCAccelerator(ABC):
    """Base class for accelerators attached over the RoCC interface."""

    #: Short name used in blade configurations and Table II.
    name: str = "rocc"
    #: Human-readable purpose (Table II's "Purpose" column).
    purpose: str = ""

    @abstractmethod
    def invoke_cycles(self, cycle: int, work: ComputeBlock) -> int:
        """Cycles to complete ``work`` when offloaded to this accelerator."""


class Hwacha(RoCCAccelerator):
    """Vector-accelerated compute (Table II; Section VIII).

    Models a decoupled vector unit: the vectorizable fraction of a block
    runs ``vector_lanes`` times faster, the rest runs at scalar speed.
    """

    name = "hwacha"
    purpose = "Vector-accelerated compute"

    def __init__(self, vector_lanes: int = 8, vectorizable: float = 0.9) -> None:
        if vector_lanes < 1:
            raise ValueError("need at least one vector lane")
        if not 0.0 <= vectorizable <= 1.0:
            raise ValueError("vectorizable fraction must be in [0, 1]")
        self.vector_lanes = vector_lanes
        self.vectorizable = vectorizable

    def invoke_cycles(self, cycle: int, work: ComputeBlock) -> int:
        scalar = work.instructions
        vector_part = scalar * self.vectorizable / self.vector_lanes
        serial_part = scalar * (1.0 - self.vectorizable)
        return max(1, round(vector_part + serial_part))


class HLSAccelerator(RoCCAccelerator):
    """Rapid custom scale-out accelerator generated from HLS (Table II)."""

    name = "hls"
    purpose = "Rapid custom scale-out accels."

    def __init__(
        self,
        invocation_latency_cycles: int = 100,
        bytes_per_cycle: float = 16.0,
    ) -> None:
        if invocation_latency_cycles < 0:
            raise ValueError("invocation latency must be >= 0")
        if bytes_per_cycle <= 0:
            raise ValueError("throughput must be positive")
        self.invocation_latency_cycles = invocation_latency_cycles
        self.bytes_per_cycle = bytes_per_cycle

    def invoke_cycles(self, cycle: int, work: ComputeBlock) -> int:
        data_bytes = work.footprint_bytes
        return self.invocation_latency_cycles + max(
            1, round(data_bytes / self.bytes_per_cycle)
        )


class PageFaultAcceleratorPort(RoCCAccelerator):
    """Registry entry for the PFA (Section VI).

    The full device model (freeQ/newQ queues, remote fetch engine) lives
    in :mod:`repro.pfa.pfa`; blades that name ``"pfa"`` in their
    accelerator list get that device wired to the OS paging model.  The
    RoCC-side invocation simply reflects the fetch engine's occupancy.
    """

    name = "pfa"
    purpose = "Remote memory fast-path"

    def invoke_cycles(self, cycle: int, work: ComputeBlock) -> int:
        # The PFA operates autonomously on page faults; a direct RoCC
        # invocation is a queue push (freeQ/newQ), a handful of cycles.
        return 4


#: Table II registry: accelerator name -> class.
ACCELERATOR_TYPES: Dict[str, Type[RoCCAccelerator]] = {
    Hwacha.name: Hwacha,
    HLSAccelerator.name: HLSAccelerator,
    PageFaultAcceleratorPort.name: PageFaultAcceleratorPort,
}


def build_accelerator(name: str, **kwargs) -> RoCCAccelerator:
    """Instantiate an accelerator by Table II name."""
    try:
        cls = ACCELERATOR_TYPES[name]
    except KeyError:
        raise ValueError(
            f"unknown accelerator {name!r}; known: {sorted(ACCELERATOR_TYPES)}"
        ) from None
    return cls(**kwargs)
