"""BOOM: the Berkeley Out-of-Order Machine (Section VIII).

"Unlike software simulators, FireSim can integrate more complicated CPU
models without sacrificing performance, as long as they fit on the FPGA
and meet timing ... integrating BOOM should require only a few lines of
configuration change" — and "one BOOM core consumes roughly the same
resources as a quad-core Rocket".

This module provides that integration point for the reproduction: a
:class:`BoomCore` timing model (superscalar and out-of-order, so its
achievable CPI drops below Rocket's single-issue floor and memory
latency is partially overlapped), plus the FPGA-resource constant the
mapper/fpga accounting uses.  Blade configurations select it with one
line (``core_type="boom"``) — see ``repro.tile.soc.NAMED_CONFIGS``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.tile.caches import MemoryHierarchy
from repro.tile.rocket import ComputeBlock, RocketCore

#: One BOOM core's share of the FPGA: about a quad-core Rocket blade
#: (Section VIII), i.e. 4 x 14.4% / 4 cores = the whole blade fraction.
BOOM_CORE_BLADE_FRACTION = 0.576


class BoomCore(RocketCore):
    """An out-of-order superscalar core timing model.

    Attributes:
        issue_width: instructions issued per cycle (BOOM configs are
            typically 2- to 4-wide).
        mlp: memory-level parallelism — the number of outstanding misses
            the load/store unit overlaps, which divides the *observed*
            memory stall time relative to in-order Rocket.
    """

    def __init__(
        self,
        core_id: int,
        hierarchy: MemoryHierarchy,
        issue_width: int = 2,
        mlp: float = 2.0,
        seed: int = 0,
    ) -> None:
        if issue_width < 1:
            raise ValueError("issue width must be >= 1")
        if mlp < 1.0:
            raise ValueError("memory-level parallelism must be >= 1")
        # Bypass Rocket's single-issue CPI floor: the superscalar core
        # retires up to issue_width instructions per cycle, with a
        # realistic ~70% sustained efficiency.
        super().__init__(core_id, hierarchy, cpi_base=1.0, seed=seed)
        self.issue_width = issue_width
        self.mlp = mlp
        self.cpi_base = max(1.0 / issue_width / 0.7, 0.25)

    def execute_block(self, cycle: int, block: ComputeBlock) -> int:
        compute_cycles = round(block.instructions * self.cpi_base)
        mem_cycles = round(self._time_memory(cycle, block) / self.mlp)
        total = max(compute_cycles, 1) + mem_cycles
        self.stats.instructions += block.instructions
        self.stats.cycles += total
        self.stats.mem_ref_cycles += mem_cycles
        return total
