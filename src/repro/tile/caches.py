"""Cache timing models: L1I / L1D / shared L2 (Table I).

The paper's server blade carries 16 KiB L1I, 16 KiB L1D and a 256 KiB
shared L2, all implemented in RTL.  Here each cache is a set-associative
LRU timing model with writeback/write-allocate semantics; a
:class:`MemoryHierarchy` chains L1 -> L2 -> DRAM and returns whole-access
latencies in target cycles.

These models serve two purposes: they time the NIC's DMA traffic into the
shared L2 (the NIC connects directly to the on-chip interconnect,
Section III-A2), and they provide the cache-pollution behaviour that the
Page-Fault Accelerator case study depends on (Section VI).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.tile.dram import DRAMModel

LINE_BYTES = 64


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and hit latency of one cache level."""

    size_bytes: int
    ways: int
    hit_latency_cycles: int
    line_bytes: int = LINE_BYTES

    def __post_init__(self) -> None:
        if self.size_bytes % (self.ways * self.line_bytes) != 0:
            raise ValueError(
                f"{self.size_bytes}B cache not divisible into "
                f"{self.ways} ways of {self.line_bytes}B lines"
            )

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.ways * self.line_bytes)


# Table I geometries.
L1I_CONFIG = CacheConfig(size_bytes=16 * 1024, ways=4, hit_latency_cycles=1)
L1D_CONFIG = CacheConfig(size_bytes=16 * 1024, ways=4, hit_latency_cycles=2)
L2_CONFIG = CacheConfig(size_bytes=256 * 1024, ways=8, hit_latency_cycles=12)


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class CacheModel:
    """A set-associative LRU cache timing model (one level)."""

    def __init__(self, name: str, config: CacheConfig) -> None:
        self.name = name
        self.config = config
        # Per-set OrderedDict of tag -> dirty flag; order is LRU (oldest first).
        self._sets: List[OrderedDict[int, bool]] = [
            OrderedDict() for _ in range(config.num_sets)
        ]
        self.stats = CacheStats()

    def _locate(self, addr: int) -> Tuple[int, int]:
        line = addr // self.config.line_bytes
        return line % self.config.num_sets, line // self.config.num_sets

    def lookup(self, addr: int, is_write: bool) -> Tuple[bool, Optional[int]]:
        """Access the cache; returns (hit, writeback_line_addr_or_None).

        On a miss the line is allocated (write-allocate) and the evicted
        victim's address is returned if it was dirty (writeback).
        """
        set_index, tag = self._locate(addr)
        cache_set = self._sets[set_index]
        if tag in cache_set:
            self.stats.hits += 1
            cache_set.move_to_end(tag)
            if is_write:
                cache_set[tag] = True
            return True, None
        self.stats.misses += 1
        writeback = None
        if len(cache_set) >= self.config.ways:
            victim_tag, dirty = cache_set.popitem(last=False)
            self.stats.evictions += 1
            if dirty:
                self.stats.writebacks += 1
                victim_line = victim_tag * self.config.num_sets + set_index
                writeback = victim_line * self.config.line_bytes
        cache_set[tag] = is_write
        return False, writeback

    def invalidate_all(self) -> int:
        """Flush the cache (e.g. on context pollution); returns lines dropped."""
        dropped = sum(len(s) for s in self._sets)
        for s in self._sets:
            s.clear()
        return dropped

    def occupancy(self) -> int:
        """Number of valid lines currently resident."""
        return sum(len(s) for s in self._sets)


class MemoryHierarchy:
    """L1D -> L2 -> DRAM timing chain for one core's data accesses.

    The shared L2 and the DRAM model are passed in so multiple cores (and
    the NIC, which reads/writes the shared L2 directly) contend on the
    same structures.
    """

    def __init__(
        self,
        l1d: CacheModel,
        l2: CacheModel,
        dram: DRAMModel,
        bus: Optional["TileLinkBus"] = None,
    ) -> None:
        self.l1d = l1d
        self.l2 = l2
        self.dram = dram
        self.bus = bus

    def access(self, cycle: int, addr: int, is_write: bool = False) -> int:
        """One load/store; returns total latency in cycles."""
        latency = self.l1d.config.hit_latency_cycles
        hit, writeback = self.l1d.lookup(addr, is_write)
        if hit:
            return latency
        if writeback is not None:
            # Writebacks are buffered; charge the L2 lookup only.
            self.l2.lookup(writeback, True)
        latency += self.l2.config.hit_latency_cycles
        l2_hit, l2_writeback = self.l2.lookup(addr, is_write)
        if l2_hit:
            return latency
        if l2_writeback is not None:
            self.dram.access(cycle + latency, l2_writeback, True)
        completion = self.dram.access(cycle + latency, addr, False)
        return (completion - cycle) if completion > cycle else latency

    def dma_access(self, cycle: int, addr: int, size: int, is_write: bool) -> int:
        """NIC/blockdev DMA through the shared L2 (Section III-A2).

        Returns the completion cycle.  DMA bypasses the L1s, and — because
        the NIC reader issues reads ahead and the reservation buffer
        re-orders completions (Section III-A2) — the transfer is
        bandwidth-limited, not latency-chained: every line is issued at the
        request cycle and the lines pipeline on the TileLink bus (L2 hits)
        or the DRAM channel bus (L2 misses).
        """
        l2 = self.l2
        line = l2.config.line_bytes
        start_line = addr // line
        end_line = (addr + max(size, 1) - 1) // line
        # Hot DMA path: every attribute used per line is hoisted once
        # per transfer.
        l2_lookup = l2.lookup
        hit_latency = l2.config.hit_latency_cycles
        bus = self.bus
        bus_acquire = bus.acquire if bus is not None else None
        dram_access = self.dram.access
        completion = cycle
        for line_index in range(start_line, end_line + 1):
            line_addr = line_index * line
            hit, writeback = l2_lookup(line_addr, is_write)
            if hit:
                if bus_acquire is not None:
                    done = bus_acquire(cycle, line)
                else:
                    done = completion + hit_latency
            else:
                if writeback is not None:
                    dram_access(cycle, writeback, True)
                done = dram_access(cycle, line_addr, is_write)
            if done > completion:
                completion = done
        return completion
