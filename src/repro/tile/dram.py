"""DDR3 DRAM timing model.

The paper attaches a synthesizable DRAM timing model (from MIDAS [30]) to
each FPGA's on-board DRAM, parameterized to model DDR3 (Section III-A4,
Table I: 16 GiB DDR3 per blade).  This module reproduces that timing model
at the same granularity: open-row per-bank state, bank timing constraints
(tRCD/tCAS/tRP/tRAS), and channel data-bus occupancy.

The model is *timing only*: callers present ``(cycle, address, is_write)``
and receive the completion cycle; data contents live elsewhere (functional
models).  All parameters are expressed in target-clock cycles, derived
from nanosecond DDR3-1600-style timings at construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.core.clock import DEFAULT_CLOCK, TargetClock


@dataclass(frozen=True)
class DDR3Timings:
    """DDR3 timing parameters, in nanoseconds (DDR3-1600 CL11-ish)."""

    t_cas_ns: float = 13.75  # column access (CAS) latency
    t_rcd_ns: float = 13.75  # row-to-column delay (activate -> access)
    t_rp_ns: float = 13.75  # row precharge
    t_ras_ns: float = 35.0  # minimum row-active time
    burst_ns: float = 5.0  # one 64-byte burst on the data bus


@dataclass(frozen=True)
class DRAMConfig:
    """Geometry + timing of one memory channel group.

    Attributes:
        capacity_bytes: total capacity (Table I: 16 GiB per server).
        num_channels: independent channels (F1 FPGAs have 4 on-board).
        banks_per_channel: DDR3 has 8 banks per rank.
        row_bytes: bytes per row (page) per bank.
        timings: DDR3 timing set.
    """

    capacity_bytes: int = 16 * 1024**3
    num_channels: int = 1
    banks_per_channel: int = 8
    row_bytes: int = 8192
    timings: DDR3Timings = field(default_factory=DDR3Timings)


class _Bank:
    __slots__ = ("open_row", "busy_until", "active_since")

    def __init__(self) -> None:
        self.open_row = -1
        self.busy_until = 0
        self.active_since = 0


@dataclass
class DRAMStats:
    reads: int = 0
    writes: int = 0
    row_hits: int = 0
    row_misses: int = 0
    row_conflicts: int = 0


class DRAMModel:
    """Cycle-stamped DDR3 access timing.

    ``access(cycle, addr, is_write)`` returns the cycle at which the 64-byte
    burst completes.  Requests to the same bank serialize on the bank's
    ``busy_until``; the channel data bus serializes bursts.
    """

    def __init__(
        self,
        config: DRAMConfig | None = None,
        clock: TargetClock = DEFAULT_CLOCK,
    ) -> None:
        self.config = config or DRAMConfig()
        self.clock = clock
        t = self.config.timings
        self._t_cas = clock.cycles(t.t_cas_ns * 1e-9)
        self._t_rcd = clock.cycles(t.t_rcd_ns * 1e-9)
        self._t_rp = clock.cycles(t.t_rp_ns * 1e-9)
        self._t_ras = clock.cycles(t.t_ras_ns * 1e-9)
        self._t_burst = max(1, clock.cycles(t.burst_ns * 1e-9))
        self._banks: List[List[_Bank]] = [
            [_Bank() for _ in range(self.config.banks_per_channel)]
            for _ in range(self.config.num_channels)
        ]
        self._bus_free: List[int] = [0] * self.config.num_channels
        self.stats = DRAMStats()

    # -- address mapping -------------------------------------------------

    def _map(self, addr: int) -> tuple[int, int, int]:
        """Map an address to (channel, bank, row).

        Channel interleave on 64-byte granularity, then bank, then row —
        a common open-page-friendly mapping.
        """
        if addr < 0:
            raise ValueError(f"address must be >= 0, got {addr}")
        block = addr // 64
        channel = block % self.config.num_channels
        block //= self.config.num_channels
        bank = block % self.config.banks_per_channel
        block //= self.config.banks_per_channel
        row = block // (self.config.row_bytes // 64)
        return channel, bank, row

    # -- access ----------------------------------------------------------

    def access(self, cycle: int, addr: int, is_write: bool = False) -> int:
        """Issue one 64-byte access; returns its completion cycle."""
        channel, bank_index, row = self._map(addr)
        bank = self._banks[channel][bank_index]
        start = max(cycle, bank.busy_until)

        if bank.open_row == row:
            self.stats.row_hits += 1
            access_done = start + self._t_cas
        elif bank.open_row == -1:
            self.stats.row_misses += 1
            access_done = start + self._t_rcd + self._t_cas
            bank.active_since = start
        else:
            self.stats.row_conflicts += 1
            # Respect tRAS before precharging the currently open row.
            precharge_at = max(start, bank.active_since + self._t_ras)
            access_done = precharge_at + self._t_rp + self._t_rcd + self._t_cas
            bank.active_since = precharge_at + self._t_rp
        bank.open_row = row

        # Serialize the burst on the channel data bus.
        burst_start = max(access_done, self._bus_free[channel])
        completion = burst_start + self._t_burst
        self._bus_free[channel] = completion
        bank.busy_until = completion

        if is_write:
            self.stats.writes += 1
        else:
            self.stats.reads += 1
        return completion

    def access_bytes(self, cycle: int, addr: int, size: int, is_write: bool = False) -> int:
        """Issue a multi-burst access covering ``size`` bytes; returns last completion.

        Equivalent to calling :meth:`access` once per 64-byte block at
        the same issue cycle, but the address decomposition for the
        whole burst is computed up front (vectorized for long bursts)
        and the per-block state machine runs on hoisted locals — DMA is
        the hot caller and pays this per NIC/blockdev transfer.
        """
        if size <= 0:
            raise ValueError(f"size must be positive, got {size}")
        count = (size + 63) // 64
        if count == 1:
            return self.access(cycle, addr, is_write)
        if addr < 0:
            raise ValueError(f"address must be >= 0, got {addr}")
        config = self.config
        num_channels = config.num_channels
        num_banks = config.banks_per_channel
        row_blocks = config.row_bytes // 64
        first_block = addr // 64
        if count >= 8:
            blocks = first_block + np.arange(count, dtype=np.int64)
            channels = (blocks % num_channels).tolist()
            blocks //= num_channels
            bank_indices = (blocks % num_banks).tolist()
            rows = (blocks // num_banks // row_blocks).tolist()
        else:
            channels = []
            bank_indices = []
            rows = []
            for block in range(first_block, first_block + count):
                channels.append(block % num_channels)
                block //= num_channels
                bank_indices.append(block % num_banks)
                rows.append(block // num_banks // row_blocks)
        t_cas = self._t_cas
        t_rcd = self._t_rcd
        t_rp = self._t_rp
        t_ras = self._t_ras
        t_burst = self._t_burst
        banks = self._banks
        bus_free = self._bus_free
        row_hits = row_misses = row_conflicts = 0
        completion = cycle
        for i in range(count):
            channel = channels[i]
            bank = banks[channel][bank_indices[i]]
            row = rows[i]
            busy = bank.busy_until
            start = cycle if cycle > busy else busy
            open_row = bank.open_row
            if open_row == row:
                row_hits += 1
                access_done = start + t_cas
            elif open_row == -1:
                row_misses += 1
                access_done = start + t_rcd + t_cas
                bank.active_since = start
            else:
                row_conflicts += 1
                precharge_at = max(start, bank.active_since + t_ras)
                access_done = precharge_at + t_rp + t_rcd + t_cas
                bank.active_since = precharge_at + t_rp
            bank.open_row = row
            free = bus_free[channel]
            burst_start = access_done if access_done > free else free
            completion = burst_start + t_burst
            bus_free[channel] = completion
            bank.busy_until = completion
        stats = self.stats
        stats.row_hits += row_hits
        stats.row_misses += row_misses
        stats.row_conflicts += row_conflicts
        if is_write:
            stats.writes += count
        else:
            stats.reads += count
        return completion

    @property
    def idle_latency_cycles(self) -> int:
        """Latency of an isolated row-miss access (common-case estimate)."""
        return self._t_rcd + self._t_cas + self._t_burst
