"""Rocket core timing model.

The target servers use RISC-V Rocket cores: in-order, single-issue,
scalar pipelines (Section III-A1).  FireSim executes the actual RTL; this
reproduction models the pipeline at the instruction-block level: a
:class:`ComputeBlock` summarizes a stretch of software (instruction count,
memory references, access pattern over a footprint), and the core charges

``cycles = instructions * CPI_base + sum(memory latencies)``

with memory latencies timed by the real cache/DRAM hierarchy.  For large
blocks the memory references are sampled deterministically and scaled,
keeping host cost bounded while preserving miss-rate-driven timing.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.tile.caches import MemoryHierarchy


@dataclass(frozen=True)
class ComputeBlock:
    """A summarized stretch of software execution.

    Attributes:
        instructions: dynamic instruction count.
        mem_refs: how many of those are loads/stores.
        footprint_bytes: size of the region the references fall in.
        region_base: base address of the region.
        pattern: "seq" for streaming access, "random" for uniform random.
        write_fraction: fraction of references that are stores.
    """

    instructions: int
    mem_refs: int = 0
    footprint_bytes: int = 4096
    region_base: int = 0x8000_0000
    pattern: str = "seq"
    write_fraction: float = 0.3

    def __post_init__(self) -> None:
        if self.instructions < 0 or self.mem_refs < 0:
            raise ValueError("instruction/memory counts must be >= 0")
        if self.mem_refs > self.instructions:
            raise ValueError("cannot have more memory refs than instructions")
        if self.pattern not in ("seq", "random"):
            raise ValueError(f"unknown access pattern {self.pattern!r}")
        if not 0.0 <= self.write_fraction <= 1.0:
            raise ValueError("write_fraction must be in [0, 1]")


@dataclass
class CoreStats:
    instructions: int = 0
    cycles: int = 0
    mem_ref_cycles: int = 0

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0


class RocketCore:
    """An in-order scalar Rocket pipeline timing model.

    Attributes:
        core_id: index within the SoC tile.
        hierarchy: this core's L1D -> shared L2 -> DRAM chain.
        cpi_base: cycles per instruction with a perfect memory system
            (Rocket is single-issue, so 1.0 is the floor; hazards push the
            achieved CPI slightly above it).
    """

    #: Cap on individually-timed memory references per block; beyond this
    #: the sampled latency is scaled (deterministic sampling).
    SAMPLE_LIMIT = 512

    def __init__(
        self,
        core_id: int,
        hierarchy: MemoryHierarchy,
        cpi_base: float = 1.0,
        seed: int = 0,
    ) -> None:
        if cpi_base < 1.0:
            raise ValueError("Rocket is single-issue: cpi_base >= 1.0")
        self.core_id = core_id
        self.hierarchy = hierarchy
        self.cpi_base = cpi_base
        self._rng = random.Random((seed << 8) | core_id)
        self.stats = CoreStats()

    def execute_block(self, cycle: int, block: ComputeBlock) -> int:
        """Run one compute block starting at ``cycle``; returns its cycles."""
        compute_cycles = round(block.instructions * self.cpi_base)
        mem_cycles = self._time_memory(cycle, block)
        total = compute_cycles + mem_cycles
        self.stats.instructions += block.instructions
        self.stats.cycles += total
        self.stats.mem_ref_cycles += mem_cycles
        return total

    def _time_memory(self, cycle: int, block: ComputeBlock) -> int:
        if block.mem_refs == 0:
            return 0
        sampled = min(block.mem_refs, self.SAMPLE_LIMIT)
        stride = 64
        footprint = max(block.footprint_bytes, stride)
        latency = 0
        for i in range(sampled):
            if block.pattern == "seq":
                offset = (i * stride) % footprint
            else:
                offset = self._rng.randrange(0, footprint, 8)
            is_write = self._rng.random() < block.write_fraction
            latency += self.hierarchy.access(
                cycle + latency, block.region_base + offset, is_write
            )
        if sampled < block.mem_refs:
            latency = round(latency * block.mem_refs / sampled)
        return latency

    def cycles_for_instructions(self, instructions: int) -> int:
        """Pure-compute cost (no memory) of an instruction count."""
        return round(instructions * self.cpi_base)
