"""Server SoC assembly: the Rocket Chip configurations of Table I.

A blade is generated from a :class:`RocketChipConfig` — the reproduction
of the paper's Rocket Chip generator usage: 1–4 Rocket cores at 3.2 GHz,
16 KiB L1I/L1D, 256 KiB shared L2, 16 GiB DDR3 (timing model), a 200
Gbit/s NIC and a block device, plus optional RoCC accelerators
(Tables I and II).  ``build()`` elaborates the timing structures shared by
the cores, the NIC and the block device.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.core.clock import TargetClock
from repro.tile.accelerators import ACCELERATOR_TYPES, RoCCAccelerator, build_accelerator
from repro.tile.caches import (
    CacheConfig,
    CacheModel,
    L1D_CONFIG,
    L1I_CONFIG,
    L2_CONFIG,
    MemoryHierarchy,
)
from repro.tile.dram import DRAMConfig, DRAMModel
from repro.tile.rocket import RocketCore
from repro.tile.tilelink import TileLinkBus


@dataclass(frozen=True)
class RocketChipConfig:
    """One server blade configuration (Table I).

    Attributes:
        name: configuration name used by the manager (e.g. "QuadCore").
        num_cores: 1 to 4 Rocket cores.
        freq_hz: target clock (Table I: 3.2 GHz).
        l1i / l1d / l2: cache geometries.
        dram: DRAM capacity/timing (Table I: 16 GiB DDR3).
        nic_bandwidth_bps: top-level NIC link rate (200 Gbit/s nominal).
        accelerators: RoCC accelerator names from Table II.
    """

    name: str = "QuadCore"
    num_cores: int = 4
    #: "rocket" (in-order, Table I) or "boom" (out-of-order, Section
    #: VIII — one line of configuration change to integrate).
    core_type: str = "rocket"
    freq_hz: float = 3.2e9
    l1i: CacheConfig = field(default_factory=lambda: L1I_CONFIG)
    l1d: CacheConfig = field(default_factory=lambda: L1D_CONFIG)
    l2: CacheConfig = field(default_factory=lambda: L2_CONFIG)
    dram: DRAMConfig = field(default_factory=DRAMConfig)
    nic_bandwidth_bps: float = 200e9
    accelerators: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not 1 <= self.num_cores <= 4:
            raise ValueError(
                f"Rocket Chip blades carry 1 to 4 cores, got {self.num_cores}"
            )
        if self.core_type not in ("rocket", "boom"):
            raise ValueError(
                f"unknown core type {self.core_type!r}; "
                "choose 'rocket' or 'boom'"
            )
        if self.core_type == "boom" and self.num_cores > 1:
            # One BOOM consumes roughly the resources of a quad-core
            # Rocket blade (Section VIII): a single core per blade.
            raise ValueError("BOOM blades carry a single core")
        if self.freq_hz <= 0:
            raise ValueError("target frequency must be positive")
        for accel in self.accelerators:
            if accel not in ACCELERATOR_TYPES:
                raise ValueError(
                    f"unknown accelerator {accel!r}; "
                    f"known: {sorted(ACCELERATOR_TYPES)}"
                )

    @property
    def clock(self) -> TargetClock:
        return TargetClock(self.freq_hz)

    def build(self, seed: int = 0) -> "SoC":
        return SoC(self, seed=seed)


class SoC:
    """An elaborated server SoC: cores + caches + DRAM + interconnect."""

    def __init__(self, config: RocketChipConfig, seed: int = 0) -> None:
        self.config = config
        self.clock = config.clock
        self.dram = DRAMModel(config.dram, clock=self.clock)
        self.l2 = CacheModel("l2", config.l2)
        self.bus = TileLinkBus("sbus")
        self.cores: List[RocketCore] = []
        self.l1ds: List[CacheModel] = []
        for core_id in range(config.num_cores):
            l1d = CacheModel(f"l1d{core_id}", config.l1d)
            hierarchy = MemoryHierarchy(l1d, self.l2, self.dram)
            if config.core_type == "boom":
                from repro.tile.boom import BoomCore

                core = BoomCore(core_id, hierarchy, seed=seed)
            else:
                core = RocketCore(core_id, hierarchy, seed=seed)
            self.cores.append(core)
            self.l1ds.append(l1d)
        self.accelerators: Dict[str, RoCCAccelerator] = {
            name: build_accelerator(name) for name in config.accelerators
        }
        # The NIC and block device DMA through the shared L2 on TileLink
        # (Section III-A2); they use this hierarchy view (no L1).
        self.dma_hierarchy = MemoryHierarchy(
            CacheModel("dma-l1-bypass", CacheConfig(64 * 4, 1, 0)),
            self.l2,
            self.dram,
            bus=self.bus,
        )

    @property
    def num_cores(self) -> int:
        return self.config.num_cores

    def accelerator(self, name: str) -> RoCCAccelerator:
        try:
            return self.accelerators[name]
        except KeyError:
            raise LookupError(
                f"blade {self.config.name!r} has no accelerator {name!r}"
            ) from None


#: Named blade configurations selectable from manager topologies (Fig. 4
#: instantiates ``ServerNode("QuadCore")``).
NAMED_CONFIGS: Dict[str, RocketChipConfig] = {
    "QuadCore": RocketChipConfig(name="QuadCore", num_cores=4),
    "DualCore": RocketChipConfig(name="DualCore", num_cores=2),
    "SingleCore": RocketChipConfig(name="SingleCore", num_cores=1),
    "QuadCoreHwacha": RocketChipConfig(
        name="QuadCoreHwacha", num_cores=4, accelerators=("hwacha",)
    ),
    "QuadCorePFA": RocketChipConfig(
        name="QuadCorePFA", num_cores=4, accelerators=("pfa",)
    ),
    # Section VIII: BOOM integration is one configuration line; one BOOM
    # core consumes roughly a quad-Rocket blade's FPGA resources.
    "SingleBOOM": RocketChipConfig(
        name="SingleBOOM", num_cores=1, core_type="boom"
    ),
}


def config_by_name(name: str) -> RocketChipConfig:
    """Look up a named blade configuration (manager topologies use this)."""
    try:
        return NAMED_CONFIGS[name]
    except KeyError:
        raise ValueError(
            f"unknown server configuration {name!r}; "
            f"known: {sorted(NAMED_CONFIGS)}"
        ) from None
