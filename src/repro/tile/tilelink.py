"""TileLink-style on-chip interconnect occupancy model.

The Rocket Chip SoC connects cores, the NIC, and the block device to the
shared L2 over the TileLink2 interconnect (Section III-A2).  For timing
purposes what matters is arbitration and beat occupancy: the data path is
64 bits wide, so a burst of ``n`` bytes occupies ``ceil(n/8)`` beats, and
concurrent masters serialize on the shared bus.

:class:`TileLinkBus` tracks bus occupancy across cycle-stamped requests;
each master acquires the bus for its beats and observes queueing delay
under contention.
"""

from __future__ import annotations

from dataclasses import dataclass

BEAT_BYTES = 8


@dataclass
class TileLinkStats:
    requests: int = 0
    beats: int = 0
    stall_cycles: int = 0


class TileLinkBus:
    """A single shared 64-bit interconnect segment."""

    def __init__(self, name: str = "tilelink") -> None:
        self.name = name
        self._busy_until = 0
        self.stats = TileLinkStats()

    def acquire(self, cycle: int, size_bytes: int) -> int:
        """Occupy the bus for a burst; returns the completion cycle.

        A request arriving while the bus is busy stalls until it frees,
        which is the contention behaviour the NIC's reservation buffer is
        designed to absorb (Section III-A2).
        """
        if size_bytes <= 0:
            raise ValueError(f"size must be positive, got {size_bytes}")
        beats = -(-size_bytes // BEAT_BYTES)
        start = max(cycle, self._busy_until)
        self.stats.stall_cycles += start - cycle
        completion = start + beats
        self._busy_until = completion
        self.stats.requests += 1
        self.stats.beats += beats
        return completion

    @property
    def busy_until(self) -> int:
        return self._busy_until
