"""UART console model.

The Rocket Chip blades carry a UART among their I/O peripherals (Figure
2's "Other Devices"); on real FireSim it is serviced by the software
simulation controller on the host, which timestamps and logs console
output (the per-node ``uartlog`` users read after a run).

The model charges target time per character at the configured baud rate
and records ``(cycle, line)`` pairs, so boot banners and application
prints carry exact target timestamps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple


@dataclass(frozen=True)
class UARTConfig:
    """UART timing parameters.

    Attributes:
        baud_rate: serial line rate (115200 default).
        bits_per_char: start + 8 data + stop.
        freq_hz: target clock for cycle conversion.
    """

    baud_rate: int = 115_200
    bits_per_char: int = 10
    freq_hz: float = 3.2e9

    def __post_init__(self) -> None:
        if self.baud_rate <= 0:
            raise ValueError("baud rate must be positive")

    @property
    def cycles_per_char(self) -> int:
        return round(self.freq_hz * self.bits_per_char / self.baud_rate)


class UART:
    """Transmit-side UART with a timestamped console log."""

    def __init__(self, name: str, config: UARTConfig | None = None) -> None:
        self.name = name
        self.config = config or UARTConfig()
        #: Completed lines: (cycle the final character finished, text).
        self.log: List[Tuple[int, str]] = []
        self._partial: List[str] = []
        self._tx_free_cycle = 0
        self.chars_sent = 0

    def write(self, cycle: int, text: str) -> int:
        """Queue characters for transmission; returns the completion cycle.

        Characters serialize on the line at the baud rate; newline
        terminates a log line stamped with its final character's cycle.
        """
        start = max(cycle, self._tx_free_cycle)
        completion = start
        for char in text:
            completion += self.config.cycles_per_char
            self.chars_sent += 1
            if char == "\n":
                self.log.append((completion, "".join(self._partial)))
                self._partial.clear()
            else:
                self._partial.append(char)
        self._tx_free_cycle = completion
        return completion

    def flush(self, cycle: int) -> None:
        """Force out a trailing partial line (end of simulation)."""
        if self._partial:
            self.log.append((max(cycle, self._tx_free_cycle), "".join(self._partial)))
            self._partial.clear()

    def lines(self) -> List[str]:
        """The console text without timestamps (a uartlog)."""
        return [text for _, text in self.log]
