"""Shared test configuration.

Hypothesis deadlines are disabled globally: several property tests drive
whole cycle-exact simulations whose wall-clock time varies widely across
machines, and flaky deadline failures are worse than slow tests.
"""

from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")
