"""Disaggregated accelerator pools (repro.swmodel.apps.accel_pool, §VIII)."""

import pytest

from repro.manager.runfarm import RunFarmConfig, elaborate
from repro.manager.topology import single_rack
from repro.swmodel.apps.accel_pool import (
    RESULT_LATENCY,
    attach_accelerator_pool,
    make_offload_client,
)
from repro.tile.accelerators import Hwacha
from repro.tile.rocket import ComputeBlock


def pool_cluster(num_accelerators=2):
    sim = elaborate(single_rack(4), RunFarmConfig())
    pool = sim.blade(0)
    stats = attach_accelerator_pool(pool, num_accelerators=num_accelerators)
    return sim, pool, stats


KERNEL = ComputeBlock(instructions=400_000)


class TestPool:
    def test_offload_round_trip_records_latency(self):
        sim, pool, stats = pool_cluster()
        client = sim.blade(1)
        client.spawn("offload", make_offload_client(pool.mac, [KERNEL] * 3))
        sim.run_seconds(0.004)
        latencies = client.results[RESULT_LATENCY]
        assert len(latencies) == 3
        assert stats.requests == 3

    def test_offload_latency_exceeds_accelerator_time_by_network(self):
        sim, pool, stats = pool_cluster()
        client = sim.blade(1)
        client.spawn("offload", make_offload_client(pool.mac, [KERNEL]))
        sim.run_seconds(0.003)
        latency = client.results[RESULT_LATENCY][0]
        accel_cycles = Hwacha().invoke_cycles(0, KERNEL)
        network_floor = 2 * (2 * 6400 + 10)  # request + reply, one ToR hop
        assert latency >= accel_cycles + network_floor

    def test_pool_saturates_and_queues(self):
        sim, pool, stats = pool_cluster(num_accelerators=1)
        # Three clients hammer a one-unit pool concurrently.
        for client_index in (1, 2, 3):
            sim.blade(client_index).spawn(
                f"offload{client_index}",
                make_offload_client(pool.mac, [KERNEL] * 2, gap_cycles=1_000),
            )
        sim.run_seconds(0.006)
        assert stats.requests == 6
        assert stats.busy_queued > 0

    def test_bigger_pool_cuts_tail(self):
        def worst_latency(units):
            sim, pool, _ = pool_cluster(num_accelerators=units)
            for client_index in (1, 2, 3):
                sim.blade(client_index).spawn(
                    f"offload{client_index}",
                    make_offload_client(pool.mac, [KERNEL] * 2, gap_cycles=1_000),
                )
            sim.run_seconds(0.006)
            samples = []
            for client_index in (1, 2, 3):
                samples.extend(
                    sim.blade(client_index).results[RESULT_LATENCY]
                )
            return max(samples)

        assert worst_latency(4) < worst_latency(1)

    def test_empty_pool_rejected(self):
        sim = elaborate(single_rack(2), RunFarmConfig())
        with pytest.raises(ValueError):
            attach_accelerator_pool(sim.blade(0), num_accelerators=0)
