"""RoCC accelerators (repro.tile.accelerators, Table II)."""

import pytest

from repro.tile.accelerators import (
    ACCELERATOR_TYPES,
    HLSAccelerator,
    Hwacha,
    PageFaultAcceleratorPort,
    build_accelerator,
)
from repro.tile.rocket import ComputeBlock


class TestRegistry:
    def test_table_ii_entries_present(self):
        assert set(ACCELERATOR_TYPES) == {"hwacha", "hls", "pfa"}

    def test_build_by_name(self):
        assert isinstance(build_accelerator("hwacha"), Hwacha)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown accelerator"):
            build_accelerator("tpu")

    def test_purposes_match_table_ii(self):
        assert "Remote memory" in PageFaultAcceleratorPort.purpose
        assert "Vector" in Hwacha.purpose


class TestHwacha:
    def test_amdahl_speedup(self):
        accel = Hwacha(vector_lanes=8, vectorizable=0.9)
        work = ComputeBlock(instructions=8000)
        cycles = accel.invoke_cycles(0, work)
        assert cycles == round(8000 * 0.9 / 8 + 8000 * 0.1)

    def test_fully_serial_work_gains_nothing(self):
        accel = Hwacha(vector_lanes=8, vectorizable=0.0)
        work = ComputeBlock(instructions=1000)
        assert accel.invoke_cycles(0, work) == 1000

    def test_bad_lanes_rejected(self):
        with pytest.raises(ValueError):
            Hwacha(vector_lanes=0)

    def test_bad_fraction_rejected(self):
        with pytest.raises(ValueError):
            Hwacha(vectorizable=1.2)


class TestHLS:
    def test_latency_plus_throughput(self):
        accel = HLSAccelerator(invocation_latency_cycles=100, bytes_per_cycle=16)
        work = ComputeBlock(instructions=1, footprint_bytes=1600)
        assert accel.invoke_cycles(0, work) == 100 + 100

    def test_bad_throughput_rejected(self):
        with pytest.raises(ValueError):
            HLSAccelerator(bytes_per_cycle=0)


class TestPFAPort:
    def test_queue_push_is_cheap(self):
        accel = PageFaultAcceleratorPort()
        assert accel.invoke_cycles(0, ComputeBlock(instructions=1)) <= 8
