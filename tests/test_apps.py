"""Application models (repro.swmodel.apps)."""

import pytest

from repro.manager.runfarm import elaborate
from repro.manager.topology import single_rack
from repro.swmodel.apps.iperf import (
    MSS_BYTES,
    RESULT_BYTES,
    RESULT_CYCLES,
    goodput_bps,
    make_iperf_client,
    make_iperf_server,
)
from repro.swmodel.apps.memcached import (
    MemcachedConfig,
    REPLY_BYTES,
    port_for_connection,
    start_memcached,
    worker_port,
)
from repro.swmodel.apps.mutilate import (
    RESULT_LATENCY,
    MutilateConfig,
    latency_percentiles,
    start_mutilate,
)
from repro.swmodel.apps.ping import RESULT_KEY, make_ping_client
from repro.swmodel.apps.streamer import (
    attach_baremetal_receiver,
    make_baremetal_sender,
    measured_bandwidth_bps,
)


class TestPing:
    def test_skip_first_drops_arp_ping(self):
        sim = elaborate(single_rack(2))
        target = sim.blade(1)
        sim.blade(0).spawn(
            "ping",
            make_ping_client(target.mac, count=5, interval_cycles=50_000),
        )
        sim.run_seconds(0.002)
        assert len(sim.blade(0).results[RESULT_KEY]) == 4

    def test_all_pings_with_skip_disabled(self):
        sim = elaborate(single_rack(2))
        target = sim.blade(1)
        sim.blade(0).spawn(
            "ping",
            make_ping_client(
                target.mac, count=5, interval_cycles=50_000, skip_first=False
            ),
        )
        sim.run_seconds(0.002)
        assert len(sim.blade(0).results[RESULT_KEY]) == 5


class TestIperf:
    def test_goodput_near_1_4_gbps(self):
        sim = elaborate(single_rack(2))
        server = sim.blade(1)
        server.spawn("iperf-s", make_iperf_server())
        sim.blade(0).spawn(
            "iperf-c", make_iperf_client(server.mac, total_bytes=300_000)
        )
        sim.run_seconds(0.004)
        bw = goodput_bps(
            server.results[RESULT_BYTES][0],
            server.results[RESULT_CYCLES][0],
            3.2e9,
        )
        assert 1.0e9 < bw < 1.9e9

    def test_goodput_helper_validation(self):
        with pytest.raises(ValueError):
            goodput_bps(100, 0, 3.2e9)

    def test_mss_fits_mtu(self):
        assert MSS_BYTES == 1460


class TestBaremetal:
    def test_stream_verified_in_order_and_fast(self):
        sim = elaborate(single_rack(2))
        receiver = sim.blade(1)
        attach_baremetal_receiver(receiver)
        sim.blade(0).spawn(
            "stream", make_baremetal_sender(receiver.mac, num_frames=800)
        )
        sim.run_seconds(0.0005)
        bw = measured_bandwidth_bps(receiver, 3.2e9)
        assert 80e9 < bw < 130e9  # ~100 Gbit/s (paper §IV-C)
        assert receiver.results["stream_rx_in_order"] == [True]


class TestMemcached:
    def test_connection_sharding(self):
        assert worker_port(0) == 11211
        assert port_for_connection(0, 4) == 11211
        assert port_for_connection(5, 4) == 11212

    def test_bad_thread_count_rejected(self):
        with pytest.raises(ValueError):
            MemcachedConfig(num_threads=0)

    def test_start_spawns_workers_with_pinning(self):
        sim = elaborate(single_rack(2))
        names = start_memcached(
            sim.blade(0), MemcachedConfig(num_threads=4, pin_threads=True)
        )
        assert len(names) == 4
        sim.run_seconds(0.0001)
        pinned = [
            t.pinned_core
            for t in sim.blade(0).kernel.scheduler.threads
            if t.name.startswith("memcached")
        ]
        assert sorted(pinned) == [0, 1, 2, 3]

    def test_request_reply_loop(self):
        sim = elaborate(single_rack(2))
        server = sim.blade(0)
        client = sim.blade(1)
        start_memcached(server, MemcachedConfig(num_threads=2))
        start_mutilate(
            client,
            MutilateConfig(
                server_mac=server.mac,
                target_qps=20_000,
                duration_cycles=int(0.004 * 3.2e9),
                server_threads=2,
            ),
        )
        sim.run_seconds(0.006)
        latencies = client.results[RESULT_LATENCY]
        assert len(latencies) > 20
        assert all(lat > 0 for lat in latencies)


class TestMutilate:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            MutilateConfig(server_mac=1, target_qps=0, duration_cycles=100)
        with pytest.raises(ValueError):
            MutilateConfig(server_mac=1, target_qps=10, duration_cycles=0)

    def test_percentiles_nearest_rank(self):
        samples = list(range(1, 101))
        p50, p95 = latency_percentiles(samples)
        assert p50 == 50
        assert p95 == 95

    def test_percentiles_validation(self):
        with pytest.raises(ValueError):
            latency_percentiles([])
        with pytest.raises(ValueError):
            latency_percentiles([1], percentiles=(150,))

    def test_open_loop_does_not_wait_for_responses(self):
        """Requests keep flowing even if the server never answers."""
        sim = elaborate(single_rack(2))
        client = sim.blade(1)
        start_mutilate(
            client,
            MutilateConfig(
                server_mac=sim.blade(0).mac,  # nothing listening
                target_qps=50_000,
                duration_cycles=int(0.002 * 3.2e9),
            ),
        )
        sim.run_seconds(0.004)
        sent = client.results["mutilate_requests_sent"][0]
        assert sent > 50  # ~100 expected at 50k QPS over 2 ms
