"""Section VII comparison baselines (repro.host.baselines)."""

import pytest

from repro.experiments import sec7_comparison
from repro.host.baselines import (
    DIABLO,
    DIST_GEM5,
    GRAPHITE,
    firesim_envelope,
    measure_this_reproduction_rate,
)


class TestPublishedEnvelopes:
    def test_dist_gem5_is_kips_scale(self):
        assert 5e3 <= DIST_GEM5.node_rate_hz <= 100e3
        assert DIST_GEM5.runs_full_os
        assert not DIST_GEM5.cycle_exact

    def test_graphite_drops_fidelity_for_speed(self):
        assert GRAPHITE.slowdown_vs() == pytest.approx(41.0)
        assert not GRAPHITE.runs_full_os

    def test_diablo_needs_capex(self):
        assert DIABLO.capex_usd == pytest.approx(100_000)
        assert DIABLO.cycle_exact


class TestFireSimEnvelope:
    def test_orders_of_magnitude_over_software(self):
        """Section VII: 'several orders of magnitude improved
        performance' over software full-system simulation."""
        firesim = firesim_envelope()
        assert firesim.node_rate_hz / DIST_GEM5.node_rate_hz > 50
        assert firesim.cycle_exact and firesim.runs_full_os
        assert firesim.capex_usd == 0.0

    def test_under_1000x_slowdown(self):
        assert firesim_envelope().slowdown_vs() < 1000


class TestMeasuredRow:
    def test_self_measurement_produces_positive_rate(self):
        row = measure_this_reproduction_rate(num_nodes=2, target_cycles=64_000)
        assert row.node_rate_hz > 0
        assert row.cycle_exact


class TestSec7Experiment:
    def test_table_contains_all_rows(self):
        result = sec7_comparison.run(include_measured=False)
        names = {row.name for row in result.rows}
        assert names == {"FireSim", "DIABLO", "dist-gem5", "Graphite"}
        assert result.envelope("FireSim").cycle_exact
        with pytest.raises(LookupError):
            result.envelope("SimpleScalar")

    def test_table_renders(self):
        text = str(sec7_comparison.run(include_measured=False).table())
        assert "dist-gem5" in text and "KIPS" in text
