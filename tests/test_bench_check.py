"""Benchmark regression gate (scripts/check_bench_regression.py).

The checker is the CI tripwire for the batched engine's speedup claim,
so it gets its own unit coverage: a gate that silently stops gating is
worse than no gate.
"""

import importlib.util
import json
import os

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "check_bench_regression",
    os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "scripts",
        "check_bench_regression.py",
    ),
)
checker = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(checker)


def core_doc(speedup=3.2):
    return {
        "schema": "repro.bench.core/v1",
        "speedup": {"batched_over_scalar": speedup},
    }

def dist_doc(modeled):
    return {
        "schema": "repro.bench.dist/v1",
        "speedup": {"modeled": dict(modeled), "measured": {"2": 0.4}},
    }


def dist_doc_v3(shm_over_pipe=2.0, profiler_pipe=1.01, profiler_shm=1.00):
    return {
        "schema": "repro.bench.dist/v3",
        "speedup": {
            "modeled": {"pipe": {"2": 1.3}, "shm": {"2": 1.9}},
            "shm_over_pipe_measured": {"2": shm_over_pipe},
        },
        "profiler": {
            "overhead_ratio": {"pipe": profiler_pipe, "shm": profiler_shm},
            "method": "alternate-round probe",
            "workers": 2,
        },
    }


def write(tmp_path, name, document):
    path = tmp_path / name
    path.write_text(json.dumps(document))
    return str(path)


class TestExtractRatios:
    def test_core_schema_yields_single_ratio(self):
        assert checker.extract_ratios(core_doc(3.0)) == {
            "speedup.batched_over_scalar": 3.0
        }

    def test_dist_schema_yields_one_ratio_per_worker_count(self):
        ratios = checker.extract_ratios(dist_doc({"2": 1.3, "8": 3.2}))
        assert ratios == {
            "speedup.modeled[2]": 1.3,
            "speedup.modeled[8]": 3.2,
        }

    def test_measured_dist_ratios_are_never_compared(self):
        """Measured speedups on a shared-core container are noise."""
        assert not any(
            "measured" in name
            for name in checker.extract_ratios(dist_doc({"2": 1.3}))
        )

    def test_non_numeric_ratio_ignored(self):
        assert checker.extract_ratios(core_doc("fast")) == {}

    def test_v3_schema_extracts_profiler_ratios(self):
        ratios = checker.extract_ratios(dist_doc_v3())
        assert ratios["profiler.overhead_ratio[pipe]"] == 1.01
        assert ratios["profiler.overhead_ratio[shm]"] == 1.00
        assert ratios["speedup.shm_over_pipe_measured[2]"] == 2.0
        assert ratios["speedup.modeled[shm][2]"] == 1.9


class TestCompare:
    def test_regression_below_tolerance_fails(self):
        failures, warnings = checker.compare(
            core_doc(3.0), core_doc(2.0), 0.20
        )
        assert len(failures) == 1
        assert "below" in failures[0]
        assert not warnings

    def test_within_tolerance_passes(self):
        failures, warnings = checker.compare(
            core_doc(3.0), core_doc(2.5), 0.20
        )
        assert not failures
        assert not warnings

    def test_improvement_beyond_tolerance_warns_not_fails(self):
        failures, warnings = checker.compare(
            core_doc(3.0), core_doc(4.0), 0.20
        )
        assert not failures
        assert len(warnings) == 1
        assert "refreshing the baseline" in warnings[0]

    def test_schema_mismatch_fails(self):
        failures, _ = checker.compare(
            core_doc(3.0), dist_doc({"2": 1.3}), 0.20
        )
        assert failures
        assert "schema mismatch" in failures[0]

    def test_dist_compares_only_shared_worker_counts(self):
        failures, warnings = checker.compare(
            dist_doc({"2": 1.3, "8": 3.2}),
            dist_doc({"2": 1.3, "4": 0.1}),  # 4 is new, 8 is gone
            0.20,
        )
        assert not failures
        assert not warnings

    def test_disjoint_worker_counts_fail(self):
        failures, _ = checker.compare(
            dist_doc({"8": 3.2}), dist_doc({"2": 1.3}), 0.20
        )
        assert failures
        assert "no shared metrics" in failures[0]

    def test_empty_baseline_fails(self):
        failures, _ = checker.compare(
            {"schema": "repro.bench.core/v1", "speedup": {}},
            core_doc(3.0),
            0.20,
        )
        assert failures
        assert "no comparable" in failures[0]

    def test_profiler_overhead_over_ceiling_fails(self):
        """The ceiling is absolute: agreeing documents still trip it."""
        slow = dist_doc_v3(
            profiler_pipe=checker.PROFILER_OVERHEAD_CEILING + 0.1
        )
        failures, _ = checker.compare(slow, slow, 0.20)
        assert any("ceiling" in f for f in failures)

    def test_profiler_overhead_under_ceiling_passes(self):
        healthy = dist_doc_v3()
        failures, warnings = checker.compare(healthy, healthy, 0.20)
        assert not failures
        assert not warnings

    def test_profiler_overhead_exempt_from_relative_band(self):
        """A faster profiler must not trigger the improvement warning."""
        failures, warnings = checker.compare(
            dist_doc_v3(profiler_pipe=1.04),
            dist_doc_v3(profiler_pipe=0.99),
            0.20,
        )
        assert not failures
        assert not warnings

    def test_shm_floor_applies_to_v3(self):
        sunk = dist_doc_v3(shm_over_pipe=checker.SHM_OVER_PIPE_FLOOR - 0.2)
        failures, _ = checker.compare(sunk, sunk, 0.20)
        assert any("floor" in f for f in failures)


class TestMain:
    def test_regression_exits_nonzero(self, tmp_path):
        code = checker.main(
            [
                write(tmp_path, "base.json", core_doc(3.0)),
                write(tmp_path, "cur.json", core_doc(1.5)),
            ]
        )
        assert code == 1

    def test_pass_exits_zero(self, tmp_path):
        code = checker.main(
            [
                write(tmp_path, "base.json", core_doc(3.0)),
                write(tmp_path, "cur.json", core_doc(3.1)),
            ]
        )
        assert code == 0

    def test_self_test_passes_on_real_baseline(self, tmp_path):
        code = checker.main(
            ["--self-test", write(tmp_path, "base.json", core_doc(3.0))]
        )
        assert code == 0

    def test_self_test_covers_dist_schema(self, tmp_path):
        code = checker.main(
            [
                "--self-test",
                write(tmp_path, "base.json", dist_doc({"2": 1.3, "8": 3.2})),
            ]
        )
        assert code == 0

    def test_self_test_covers_v3_schema(self, tmp_path):
        """v3 self-test exercises the profiler ceiling injection."""
        code = checker.main(
            ["--self-test", write(tmp_path, "base.json", dist_doc_v3())]
        )
        assert code == 0

    def test_unknown_schema_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            checker.main(
                [
                    write(tmp_path, "base.json", {"schema": "bogus/v9"}),
                    write(tmp_path, "cur.json", core_doc(3.0)),
                ]
            )

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            checker.main(
                [str(tmp_path / "nope.json"),
                 write(tmp_path, "cur.json", core_doc(3.0))]
            )

    def test_bad_tolerance_rejected(self, tmp_path):
        base = write(tmp_path, "base.json", core_doc(3.0))
        cur = write(tmp_path, "cur.json", core_doc(3.0))
        with pytest.raises(SystemExit):
            checker.main([base, cur, "--tolerance", "1.5"])

    def test_committed_baselines_self_test(self):
        """The real committed baselines must keep the gate non-vacuous."""
        repo = os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))
        )
        for name in ("BENCH_core.json", "BENCH_dist.json"):
            assert checker.main(
                ["--self-test", os.path.join(repo, name)]
            ) == 0
