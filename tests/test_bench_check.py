"""Benchmark regression gate (scripts/check_bench_regression.py).

The checker is the CI tripwire for the batched engine's speedup claim,
so it gets its own unit coverage: a gate that silently stops gating is
worse than no gate.
"""

import importlib.util
import json
import os

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "check_bench_regression",
    os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "scripts",
        "check_bench_regression.py",
    ),
)
checker = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(checker)


def core_doc(speedup=3.2):
    return {
        "schema": "repro.bench.core/v1",
        "speedup": {"batched_over_scalar": speedup},
    }

def dist_doc(modeled):
    return {
        "schema": "repro.bench.dist/v1",
        "speedup": {"modeled": dict(modeled), "measured": {"2": 0.4}},
    }


def dist_doc_v3(shm_over_pipe=2.0, profiler_pipe=1.01, profiler_shm=1.00):
    return {
        "schema": "repro.bench.dist/v3",
        "speedup": {
            "modeled": {"pipe": {"2": 1.3}, "shm": {"2": 1.9}},
            "shm_over_pipe_measured": {"2": shm_over_pipe},
        },
        "profiler": {
            "overhead_ratio": {"pipe": profiler_pipe, "shm": profiler_shm},
            "method": "alternate-round probe",
            "workers": 2,
        },
    }


def dist_doc_v4(
    critical_4=1.3,
    critical_8=1.2,
    wall_4=0.4,
    host_cpus=1,
    quick=False,
    shm_over_pipe=None,
):
    document = {
        "schema": "repro.bench.dist/v4",
        "quick": quick,
        "host_cpu_count": host_cpus,
        "speedup": {
            "modeled": {"pipe": {"4": 2.9}, "shm": {"4": 3.5}},
            "shm_over_pipe_measured": shm_over_pipe
            or {"2": 1.3, "4": 1.5, "8": 1.7},
            "parity": {
                "critical_path": {
                    "shm": {"2": 1.1, "4": critical_4, "8": critical_8}
                },
                "wall": {"shm": {"4": wall_4}},
            },
        },
        "profiler": {
            "overhead_ratio": {"pipe": 1.10, "shm": 1.07},
            "method": "alternate-round probe",
            "workers": 2,
        },
    }
    return document


def write(tmp_path, name, document):
    path = tmp_path / name
    path.write_text(json.dumps(document))
    return str(path)


class TestExtractRatios:
    def test_core_schema_yields_single_ratio(self):
        assert checker.extract_ratios(core_doc(3.0)) == {
            "speedup.batched_over_scalar": 3.0
        }

    def test_dist_schema_yields_one_ratio_per_worker_count(self):
        ratios = checker.extract_ratios(dist_doc({"2": 1.3, "8": 3.2}))
        assert ratios == {
            "speedup.modeled[2]": 1.3,
            "speedup.modeled[8]": 3.2,
        }

    def test_measured_dist_ratios_are_never_compared(self):
        """Measured speedups on a shared-core container are noise."""
        assert not any(
            "measured" in name
            for name in checker.extract_ratios(dist_doc({"2": 1.3}))
        )

    def test_non_numeric_ratio_ignored(self):
        assert checker.extract_ratios(core_doc("fast")) == {}

    def test_v3_schema_extracts_profiler_ratios(self):
        ratios = checker.extract_ratios(dist_doc_v3())
        assert ratios["profiler.overhead_ratio[pipe]"] == 1.01
        assert ratios["profiler.overhead_ratio[shm]"] == 1.00
        assert ratios["speedup.shm_over_pipe_measured[2]"] == 2.0
        assert ratios["speedup.modeled[shm][2]"] == 1.9


class TestCompare:
    def test_regression_below_tolerance_fails(self):
        failures, warnings = checker.compare(
            core_doc(3.0), core_doc(2.0), 0.20
        )
        assert len(failures) == 1
        assert "below" in failures[0]
        assert not warnings

    def test_within_tolerance_passes(self):
        failures, warnings = checker.compare(
            core_doc(3.0), core_doc(2.5), 0.20
        )
        assert not failures
        assert not warnings

    def test_improvement_beyond_tolerance_warns_not_fails(self):
        failures, warnings = checker.compare(
            core_doc(3.0), core_doc(4.0), 0.20
        )
        assert not failures
        assert len(warnings) == 1
        assert "refreshing the baseline" in warnings[0]

    def test_schema_mismatch_fails(self):
        failures, _ = checker.compare(
            core_doc(3.0), dist_doc({"2": 1.3}), 0.20
        )
        assert failures
        assert "schema mismatch" in failures[0]

    def test_dist_compares_only_shared_worker_counts(self):
        failures, warnings = checker.compare(
            dist_doc({"2": 1.3, "8": 3.2}),
            dist_doc({"2": 1.3, "4": 0.1}),  # 4 is new, 8 is gone
            0.20,
        )
        assert not failures
        assert not warnings

    def test_disjoint_worker_counts_fail(self):
        failures, _ = checker.compare(
            dist_doc({"8": 3.2}), dist_doc({"2": 1.3}), 0.20
        )
        assert failures
        assert "no shared metrics" in failures[0]

    def test_empty_baseline_fails(self):
        failures, _ = checker.compare(
            {"schema": "repro.bench.core/v1", "speedup": {}},
            core_doc(3.0),
            0.20,
        )
        assert failures
        assert "no comparable" in failures[0]

    def test_profiler_overhead_over_ceiling_fails(self):
        """The ceiling is absolute: agreeing documents still trip it."""
        slow = dist_doc_v3(
            profiler_pipe=checker.PROFILER_OVERHEAD_CEILING + 0.1
        )
        failures, _ = checker.compare(slow, slow, 0.20)
        assert any("ceiling" in f for f in failures)

    def test_profiler_overhead_under_ceiling_passes(self):
        healthy = dist_doc_v3()
        failures, warnings = checker.compare(healthy, healthy, 0.20)
        assert not failures
        assert not warnings

    def test_profiler_overhead_exempt_from_relative_band(self):
        """A faster profiler must not trigger the improvement warning."""
        failures, warnings = checker.compare(
            dist_doc_v3(profiler_pipe=1.04),
            dist_doc_v3(profiler_pipe=0.99),
            0.20,
        )
        assert not failures
        assert not warnings

    def test_shm_floor_applies_to_v3(self):
        sunk = dist_doc_v3(shm_over_pipe=checker.SHM_OVER_PIPE_FLOOR - 0.2)
        failures, _ = checker.compare(sunk, sunk, 0.20)
        assert any("floor" in f for f in failures)


class TestShmGateKey:
    def test_v3_gates_at_two_workers(self):
        assert checker.shm_gate_key(dist_doc_v3()) == "2"

    def test_v4_gates_at_highest_worker_count(self):
        assert checker.shm_gate_key(dist_doc_v4()) == "8"

    def test_v4_low_worker_dip_not_gated(self):
        """2-worker shm ratio below the strict floor is fine in v4 as
        long as the highest worker count clears it (the eager flush
        legitimately narrows the 2-worker gap)."""
        document = dist_doc_v4(
            shm_over_pipe={
                "2": checker.SHM_OVER_PIPE_FLOOR - 0.2,
                "8": checker.SHM_OVER_PIPE_FLOOR + 0.2,
            }
        )
        failures, _ = checker.compare(document, document, 0.20)
        assert not any("shm_over_pipe" in f for f in failures)

    def test_v4_sunk_at_gate_key_fails(self):
        document = dist_doc_v4(
            shm_over_pipe={"8": checker.SHM_OVER_PIPE_FLOOR - 0.2}
        )
        failures, _ = checker.compare(document, document, 0.20)
        assert any("shm_over_pipe_measured[8]" in f for f in failures)


class TestParityGate:
    def test_healthy_document_passes(self):
        assert checker.check_parity(dist_doc_v4()) == []

    def test_v3_documents_not_gated(self):
        assert checker.check_parity(dist_doc_v3()) == []

    def test_critical_path_below_floor_fails(self):
        sunk = dist_doc_v4(
            critical_4=checker.PARITY_CRITICAL_PATH_FLOOR - 0.2
        )
        failures = checker.check_parity(sunk)
        assert any("critical_path[shm][4]" in f for f in failures)

    def test_sub_min_worker_counts_not_gated(self):
        """The 2-worker ratio is informational: parity is claimed at
        PARITY_MIN_WORKERS and up."""
        document = dist_doc_v4()
        document["speedup"]["parity"]["critical_path"]["shm"]["2"] = 0.5
        assert checker.check_parity(document) == []

    def test_quick_floor_relaxed_but_present(self):
        mid = (
            checker.PARITY_CRITICAL_PATH_QUICK_FLOOR
            + checker.PARITY_CRITICAL_PATH_FLOOR
        ) / 2
        assert checker.check_parity(dist_doc_v4(critical_4=mid, quick=True)) == []
        sunk = dist_doc_v4(
            critical_4=checker.PARITY_CRITICAL_PATH_QUICK_FLOOR - 0.1,
            quick=True,
        )
        assert checker.check_parity(sunk)

    def test_missing_parity_ratios_fail(self):
        document = dist_doc_v4()
        document["speedup"]["parity"]["critical_path"]["shm"] = {"2": 1.1}
        failures = checker.check_parity(document)
        assert any("nothing to gate" in f for f in failures)

    def test_wall_gated_only_with_core_headroom(self):
        sunk_wall = checker.PARITY_WALL_FLOOR - 0.2
        starved = dist_doc_v4(wall_4=sunk_wall, host_cpus=1)
        assert not any(
            ".wall[" in f for f in checker.check_parity(starved)
        )
        roomy = dist_doc_v4(
            wall_4=sunk_wall,
            host_cpus=4 + checker.PARITY_WALL_CPU_HEADROOM,
        )
        assert any(".wall[" in f for f in checker.check_parity(roomy))

    def test_wall_never_gated_on_quick_runs(self):
        quick = dist_doc_v4(
            wall_4=checker.PARITY_WALL_FLOOR - 0.2,
            host_cpus=16,
            quick=True,
        )
        assert not any(".wall[" in f for f in checker.check_parity(quick))

    def test_compare_runs_the_parity_gate(self):
        sunk = dist_doc_v4(
            critical_4=checker.PARITY_CRITICAL_PATH_FLOOR - 0.2,
            critical_8=checker.PARITY_CRITICAL_PATH_FLOOR - 0.2,
        )
        failures, _ = checker.compare(sunk, sunk, 0.20)
        assert any("critical_path" in f for f in failures)


class TestMain:
    def test_regression_exits_nonzero(self, tmp_path):
        code = checker.main(
            [
                write(tmp_path, "base.json", core_doc(3.0)),
                write(tmp_path, "cur.json", core_doc(1.5)),
            ]
        )
        assert code == 1

    def test_pass_exits_zero(self, tmp_path):
        code = checker.main(
            [
                write(tmp_path, "base.json", core_doc(3.0)),
                write(tmp_path, "cur.json", core_doc(3.1)),
            ]
        )
        assert code == 0

    def test_self_test_passes_on_real_baseline(self, tmp_path):
        code = checker.main(
            ["--self-test", write(tmp_path, "base.json", core_doc(3.0))]
        )
        assert code == 0

    def test_self_test_covers_dist_schema(self, tmp_path):
        code = checker.main(
            [
                "--self-test",
                write(tmp_path, "base.json", dist_doc({"2": 1.3, "8": 3.2})),
            ]
        )
        assert code == 0

    def test_self_test_covers_v3_schema(self, tmp_path):
        """v3 self-test exercises the profiler ceiling injection."""
        code = checker.main(
            ["--self-test", write(tmp_path, "base.json", dist_doc_v3())]
        )
        assert code == 0

    def test_self_test_covers_v4_schema(self, tmp_path):
        """v4 self-test exercises the parity sink legs."""
        code = checker.main(
            ["--self-test", write(tmp_path, "base.json", dist_doc_v4())]
        )
        assert code == 0

    def test_parity_mode_gates_single_document(self, tmp_path):
        good = write(tmp_path, "good.json", dist_doc_v4())
        assert checker.main(["--parity", good]) == 0
        bad = write(
            tmp_path,
            "bad.json",
            dist_doc_v4(critical_4=0.5, critical_8=0.5),
        )
        assert checker.main(["--parity", bad]) == 1

    def test_parity_mode_rejects_pre_v4_documents(self, tmp_path):
        with pytest.raises(SystemExit):
            checker.main(
                ["--parity", write(tmp_path, "v3.json", dist_doc_v3())]
            )

    def test_unknown_schema_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            checker.main(
                [
                    write(tmp_path, "base.json", {"schema": "bogus/v9"}),
                    write(tmp_path, "cur.json", core_doc(3.0)),
                ]
            )

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            checker.main(
                [str(tmp_path / "nope.json"),
                 write(tmp_path, "cur.json", core_doc(3.0))]
            )

    def test_bad_tolerance_rejected(self, tmp_path):
        base = write(tmp_path, "base.json", core_doc(3.0))
        cur = write(tmp_path, "cur.json", core_doc(3.0))
        with pytest.raises(SystemExit):
            checker.main([base, cur, "--tolerance", "1.5"])

    def test_committed_baselines_self_test(self):
        """The real committed baselines must keep the gate non-vacuous."""
        repo = os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))
        )
        for name in ("BENCH_core.json", "BENCH_dist.json"):
            assert checker.main(
                ["--self-test", os.path.join(repo, name)]
            ) == 0
