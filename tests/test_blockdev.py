"""Block device controller (repro.blockdev, §III-A3)."""

import pytest

from repro.blockdev.controller import (
    BlockDeviceConfig,
    BlockDeviceController,
    BlockRequest,
    SECTOR_BYTES,
)
from repro.tile.caches import CacheModel, L1D_CONFIG, L2_CONFIG, MemoryHierarchy
from repro.tile.dram import DRAMModel


def fresh_blockdev(**kwargs):
    hierarchy = MemoryHierarchy(
        CacheModel("l1", L1D_CONFIG),
        CacheModel("l2", L2_CONFIG),
        DRAMModel(),
    )
    return BlockDeviceController("blkdev", hierarchy, BlockDeviceConfig(**kwargs))


class TestRequests:
    def test_allocate_returns_tracker_id_and_completes(self):
        dev = fresh_blockdev()
        tracker = dev.allocate(0, BlockRequest(0, 1, 0x1000, is_write=False))
        assert 0 <= tracker < dev.config.num_trackers
        completion, completed_tracker = dev.completion_queue[0]
        assert completed_tracker == tracker
        assert completion > dev.config.request_latency_cycles

    def test_interrupt_carries_tracker_id(self):
        dev = fresh_blockdev()
        seen = []
        dev.interrupt_handler = lambda cy, tid: seen.append((cy, tid))
        tracker = dev.allocate(0, BlockRequest(4, 2, 0x1000, is_write=True))
        assert seen and seen[0][1] == tracker

    def test_transfers_must_fit_device(self):
        dev = fresh_blockdev(capacity_sectors=16)
        with pytest.raises(ValueError):
            dev.allocate(0, BlockRequest(15, 2, 0, is_write=False))
        with pytest.raises(ValueError):
            dev.allocate(0, BlockRequest(-1, 1, 0, is_write=False))

    def test_zero_sector_transfer_rejected(self):
        dev = fresh_blockdev()
        with pytest.raises(ValueError):
            dev.allocate(0, BlockRequest(0, 0, 0, is_write=False))

    def test_larger_transfer_takes_longer(self):
        small_dev, big_dev = fresh_blockdev(), fresh_blockdev()
        small_dev.allocate(0, BlockRequest(0, 1, 0, is_write=False))
        big_dev.allocate(0, BlockRequest(0, 64, 0, is_write=False))
        small_done = small_dev.completion_queue[0][0]
        big_done = big_dev.completion_queue[0][0]
        assert big_done > small_done

    def test_trackers_allow_overlap(self):
        dev = fresh_blockdev(num_trackers=2)
        dev.allocate(0, BlockRequest(0, 64, 0, is_write=False))
        dev.allocate(0, BlockRequest(64, 64, 0x10000, is_write=False))
        first, second = (entry[0] for entry in dev.completion_queue)
        # Two trackers: the device times overlap rather than serialize.
        serial = 2 * (
            dev.config.request_latency_cycles + 64 * dev.config.sector_cycles
        )
        assert max(first, second) < serial

    def test_stats(self):
        dev = fresh_blockdev()
        dev.allocate(0, BlockRequest(0, 2, 0, is_write=False))
        dev.allocate(0, BlockRequest(2, 3, 0, is_write=True))
        assert dev.stats.reads == 1
        assert dev.stats.writes == 1
        assert dev.stats.sectors_moved == 5


class TestFunctionalStore:
    def test_write_read_roundtrip(self):
        dev = fresh_blockdev()
        payload = bytes(range(256)) * 4  # 1024 B = 2 sectors
        dev.write_sectors(10, payload)
        assert dev.read_sectors(10, 2) == payload

    def test_unwritten_sectors_read_zero(self):
        dev = fresh_blockdev()
        assert dev.read_sectors(0, 1) == b"\x00" * SECTOR_BYTES

    def test_unaligned_write_rejected(self):
        dev = fresh_blockdev()
        with pytest.raises(ValueError):
            dev.write_sectors(0, b"short")
