"""BOOM core integration (repro.tile.boom, §VIII)."""

import pytest

from repro.tile.boom import BOOM_CORE_BLADE_FRACTION, BoomCore
from repro.tile.caches import CacheModel, L1D_CONFIG, L2_CONFIG, MemoryHierarchy
from repro.tile.dram import DRAMModel
from repro.tile.rocket import ComputeBlock, RocketCore
from repro.tile.soc import RocketChipConfig, config_by_name


def hierarchy():
    return MemoryHierarchy(
        CacheModel("l1", L1D_CONFIG), CacheModel("l2", L2_CONFIG), DRAMModel()
    )


class TestBoomCore:
    def test_superscalar_beats_rocket_on_compute(self):
        block = ComputeBlock(instructions=100_000)
        rocket = RocketCore(0, hierarchy()).execute_block(0, block)
        boom = BoomCore(0, hierarchy()).execute_block(0, block)
        assert boom < rocket
        assert boom >= 100_000 * 0.25  # bounded by issue width

    def test_mlp_overlaps_memory_stalls(self):
        block = ComputeBlock(
            instructions=10_000, mem_refs=2_000,
            footprint_bytes=8 << 20, pattern="random",
        )
        narrow = BoomCore(0, hierarchy(), mlp=1.0, seed=3)
        wide = BoomCore(0, hierarchy(), mlp=4.0, seed=3)
        assert wide.execute_block(0, block) < narrow.execute_block(0, block)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            BoomCore(0, hierarchy(), issue_width=0)
        with pytest.raises(ValueError):
            BoomCore(0, hierarchy(), mlp=0.5)

    def test_resource_cost_matches_quad_rocket(self):
        """§VIII: one BOOM ~ the resources of a quad-core Rocket."""
        assert BOOM_CORE_BLADE_FRACTION == pytest.approx(4 * 0.144)


class TestBoomConfiguration:
    def test_one_line_config_change(self):
        soc = config_by_name("SingleBOOM").build()
        assert isinstance(soc.cores[0], BoomCore)

    def test_multicore_boom_rejected(self):
        with pytest.raises(ValueError, match="single core"):
            RocketChipConfig(name="x", num_cores=2, core_type="boom")

    def test_unknown_core_type_rejected(self):
        with pytest.raises(ValueError, match="core type"):
            RocketChipConfig(name="x", core_type="mips")

    def test_boom_blade_runs_in_a_cluster(self):
        from repro.manager.runfarm import elaborate
        from repro.manager.topology import ServerNode, SwitchNode
        from repro.swmodel.apps.ping import RESULT_KEY, make_ping_client

        tor = SwitchNode()
        tor.add_downlinks([ServerNode("SingleBOOM"), ServerNode("QuadCore")])
        sim = elaborate(tor)
        target = sim.blade(1)
        sim.blade(0).spawn(
            "ping", make_ping_client(target.mac, count=3, interval_cycles=80_000)
        )
        sim.run_seconds(0.001)
        assert len(sim.blade(0).results[RESULT_KEY]) == 2
