"""FPGA build farm model (repro.manager.buildfarm)."""

import pytest

from repro.manager.buildfarm import (
    BuildFarm,
    BuildFarmConfig,
    config_fingerprint,
)
from repro.tile.soc import config_by_name


class TestFingerprint:
    def test_stable_across_calls(self):
        config = config_by_name("QuadCore")
        assert config_fingerprint(config) == config_fingerprint(config)

    def test_distinct_configs_distinct_fingerprints(self):
        assert config_fingerprint(config_by_name("QuadCore")) != config_fingerprint(
            config_by_name("DualCore")
        )

    def test_accelerators_affect_fingerprint(self):
        assert config_fingerprint(
            config_by_name("QuadCore")
        ) != config_fingerprint(config_by_name("QuadCoreHwacha"))


class TestBuildFarm:
    def test_first_build_pays_then_cache_hits(self):
        farm = BuildFarm()
        results, makespan = farm.build_all(["QuadCore"])
        assert not results[0].from_cache
        assert makespan == farm.config.hours_per_build
        results, makespan = farm.build_all(["QuadCore"])
        assert results[0].from_cache
        assert makespan == 0.0
        assert farm.builds_run == 1

    def test_duplicates_in_request_deduplicated(self):
        farm = BuildFarm()
        results, _ = farm.build_all(["QuadCore", "QuadCore", "QuadCore"])
        assert len(results) == 1

    def test_parallel_makespan(self):
        farm = BuildFarm(BuildFarmConfig(num_build_instances=2, hours_per_build=8))
        names = ["QuadCore", "DualCore", "SingleCore"]
        _, makespan = farm.build_all(names)
        # Three builds over two instances: two waves.
        assert makespan == 16

    def test_agfi_lookup_builds_on_demand(self):
        farm = BuildFarm()
        agfi = farm.agfi_for("DualCore")
        assert agfi.startswith("agfi-")
        assert farm.agfi_for("DualCore") == agfi

    def test_unknown_config_rejected(self):
        with pytest.raises(ValueError):
            BuildFarm().build_all(["MysteryCore"])

    def test_invalid_farm_shape_rejected(self):
        with pytest.raises(ValueError):
            BuildFarmConfig(num_build_instances=0)
        with pytest.raises(ValueError):
            BuildFarmConfig(hours_per_build=0)
