"""Cache timing models (repro.tile.caches, Table I geometries)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.tile.caches import (
    CacheConfig,
    CacheModel,
    L1D_CONFIG,
    L1I_CONFIG,
    L2_CONFIG,
    MemoryHierarchy,
)
from repro.tile.dram import DRAMModel
from repro.tile.tilelink import TileLinkBus


class TestTableIGeometries:
    def test_l1_sizes(self):
        assert L1I_CONFIG.size_bytes == 16 * 1024
        assert L1D_CONFIG.size_bytes == 16 * 1024

    def test_l2_size(self):
        assert L2_CONFIG.size_bytes == 256 * 1024

    def test_set_counts(self):
        assert L1D_CONFIG.num_sets == 16 * 1024 // (4 * 64)
        assert L2_CONFIG.num_sets == 256 * 1024 // (8 * 64)

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=1000, ways=3, hit_latency_cycles=1)


class TestCacheModel:
    def test_cold_miss_then_hit(self):
        cache = CacheModel("c", L1D_CONFIG)
        hit, _ = cache.lookup(0x1000, False)
        assert not hit
        hit, _ = cache.lookup(0x1000, False)
        assert hit

    def test_same_line_different_byte_hits(self):
        cache = CacheModel("c", L1D_CONFIG)
        cache.lookup(0x1000, False)
        hit, _ = cache.lookup(0x103F, False)
        assert hit

    def test_lru_eviction_order(self):
        config = CacheConfig(size_bytes=2 * 64, ways=2, hit_latency_cycles=1)
        cache = CacheModel("tiny", config)  # 1 set, 2 ways
        cache.lookup(0 * 64, False)  # A
        cache.lookup(1 * 64, False)  # B
        cache.lookup(0 * 64, False)  # touch A: B becomes LRU
        cache.lookup(2 * 64, False)  # C evicts B
        hit_a, _ = cache.lookup(0 * 64, False)
        assert hit_a
        hit_b, _ = cache.lookup(1 * 64, False)
        assert not hit_b  # B was evicted

    def test_dirty_eviction_reports_writeback(self):
        config = CacheConfig(size_bytes=2 * 64, ways=2, hit_latency_cycles=1)
        cache = CacheModel("tiny", config)
        cache.lookup(0, True)  # dirty A
        cache.lookup(64, False)
        _, writeback = cache.lookup(128, False)  # evicts dirty A
        assert writeback == 0
        assert cache.stats.writebacks == 1

    def test_clean_eviction_no_writeback(self):
        config = CacheConfig(size_bytes=2 * 64, ways=2, hit_latency_cycles=1)
        cache = CacheModel("tiny", config)
        cache.lookup(0, False)
        cache.lookup(64, False)
        _, writeback = cache.lookup(128, False)
        assert writeback is None

    def test_invalidate_all(self):
        cache = CacheModel("c", L1D_CONFIG)
        for i in range(10):
            cache.lookup(i * 64, False)
        assert cache.occupancy() == 10
        assert cache.invalidate_all() == 10
        assert cache.occupancy() == 0

    def test_miss_rate(self):
        cache = CacheModel("c", L1D_CONFIG)
        cache.lookup(0, False)
        cache.lookup(0, False)
        assert cache.stats.miss_rate == pytest.approx(0.5)

    @settings(max_examples=25)
    @given(st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=200))
    def test_occupancy_never_exceeds_capacity(self, lines):
        config = CacheConfig(size_bytes=8 * 64, ways=2, hit_latency_cycles=1)
        cache = CacheModel("tiny", config)
        for line in lines:
            cache.lookup(line * 64, False)
        assert cache.occupancy() <= 8


class TestMemoryHierarchy:
    def make(self):
        dram = DRAMModel()
        l1 = CacheModel("l1", L1D_CONFIG)
        l2 = CacheModel("l2", L2_CONFIG)
        return MemoryHierarchy(l1, l2, dram), l1, l2

    def test_latency_ordering(self):
        hierarchy, _, _ = self.make()
        cold = hierarchy.access(0, 0x1000)
        l1_hit = hierarchy.access(1000, 0x1000)
        assert l1_hit == L1D_CONFIG.hit_latency_cycles
        assert cold > l1_hit

    def test_l2_hit_latency_between_l1_and_dram(self):
        hierarchy, l1, _ = self.make()
        hierarchy.access(0, 0x1000)  # fill both
        l1.invalidate_all()
        l2_hit = hierarchy.access(1000, 0x1000)
        assert l2_hit == (
            L1D_CONFIG.hit_latency_cycles + L2_CONFIG.hit_latency_cycles
        )

    def test_dma_bypasses_l1(self):
        hierarchy, l1, l2 = self.make()
        hierarchy.dma_access(0, 0x2000, 512, is_write=True)
        assert l1.stats.accesses == 0
        assert l2.stats.accesses > 0

    def test_dma_l2_resident_faster_than_dram(self):
        hierarchy, _, _ = self.make()
        cold_done = hierarchy.dma_access(0, 0x4000, 1024, is_write=False)
        warm_done = (
            hierarchy.dma_access(cold_done, 0x4000, 1024, is_write=False)
            - cold_done
        )
        assert warm_done < cold_done

    def test_dma_with_bus_is_beat_limited(self):
        dram = DRAMModel()
        l2 = CacheModel("l2", L2_CONFIG)
        bus = TileLinkBus()
        hierarchy = MemoryHierarchy(
            CacheModel("l1", L1D_CONFIG), l2, dram, bus=bus
        )
        hierarchy.dma_access(0, 0x8000, 512, is_write=False)  # warm L2
        start = 100_000
        done = hierarchy.dma_access(start, 0x8000, 512, is_write=False)
        # 512 B = 8 lines; L2-resident DMA paces at 8 beats (cycles)/line.
        assert done - start == 8 * 8
