"""Links and token queues (repro.core.channel)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.channel import Link, LinkEndpoint
from repro.core.token import Flit, TokenBatch


class TestLinkEndpoint:
    def test_push_pop_roundtrip(self):
        endpoint = LinkEndpoint()
        batch = TokenBatch(0, 10)
        batch.add(3, Flit("x"))
        endpoint.push(batch)
        out = endpoint.pop(10)
        assert out.valid_count == 1
        assert 3 in out.flits

    def test_push_requires_contiguity(self):
        endpoint = LinkEndpoint()
        endpoint.push(TokenBatch(0, 10))
        with pytest.raises(ValueError):
            endpoint.push(TokenBatch(11, 10))

    def test_pop_more_than_available_raises(self):
        endpoint = LinkEndpoint()
        endpoint.push(TokenBatch(0, 5))
        with pytest.raises(LookupError):
            endpoint.pop(6)

    def test_pop_gathers_across_batches(self):
        endpoint = LinkEndpoint()
        first = TokenBatch(0, 5)
        first.add(4, Flit("a"))
        second = TokenBatch(5, 5)
        second.add(5, Flit("b"))
        endpoint.push(first)
        endpoint.push(second)
        out = endpoint.pop(8)
        assert sorted(out.flits) == [4, 5]
        rest = endpoint.pop(2)
        assert rest.start_cycle == 8

    def test_pop_splits_head_batch(self):
        endpoint = LinkEndpoint()
        batch = TokenBatch(0, 10)
        batch.add(2, Flit("early"))
        batch.add(7, Flit("late"))
        endpoint.push(batch)
        first = endpoint.pop(5)
        assert list(first.flits) == [2]
        second = endpoint.pop(5)
        assert list(second.flits) == [7]

    @given(
        st.lists(st.integers(min_value=1, max_value=20), min_size=1, max_size=10),
        st.data(),
    )
    def test_token_conservation_under_arbitrary_pops(self, batch_sizes, data):
        """Tokens out == tokens in, regardless of pop partitioning."""
        endpoint = LinkEndpoint()
        total = 0
        for size in batch_sizes:
            endpoint.push(TokenBatch(total, size))
            total += size
        popped = 0
        while popped < total:
            take = data.draw(
                st.integers(min_value=1, max_value=total - popped)
            )
            out = endpoint.pop(take)
            assert out.start_cycle == popped
            assert out.length == take
            popped += take
        assert endpoint.available_tokens == 0


class TestLink:
    def test_priming_seeds_one_latency_each_way(self):
        link = Link(64)
        link.prime()
        assert link.in_flight("a_to_b") == 64
        assert link.in_flight("b_to_a") == 64

    def test_double_prime_rejected(self):
        link = Link(8)
        link.prime()
        with pytest.raises(RuntimeError):
            link.prime()

    def test_send_relabels_by_latency(self):
        link = Link(100)
        link.prime()
        batch = TokenBatch(0, 100)
        batch.add(37, Flit("m"))
        link.send_from_a(batch)
        link.to_b.pop(100)  # primed tokens
        arrived = link.to_b.pop(100)
        assert list(arrived.flits) == [137]

    def test_in_flight_invariant_over_rounds(self):
        """After priming, consuming Q and producing Q keeps l in flight."""
        link = Link(10)
        link.prime()
        for round_index in range(5):
            start = round_index * 10
            link.to_b.pop(10)
            link.send_from_a(TokenBatch(start, 10))
            assert link.in_flight("a_to_b") == 10

    def test_flit_counters(self):
        link = Link(4)
        link.prime()
        batch = TokenBatch(0, 4)
        batch.add(0, Flit("x", last=True))
        link.send_from_a(batch)
        assert link.flits_a_to_b == 1
        assert link.flits_b_to_a == 0

    def test_nonpositive_latency_rejected(self):
        with pytest.raises(ValueError):
            Link(0)

    def test_unknown_direction_rejected(self):
        with pytest.raises(ValueError):
            Link(4).in_flight("sideways")
