"""Manager CLI (repro.manager.cli)."""

import io

import pytest

from repro.manager.cli import main, make_parser


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestParser:
    def test_verbs_required(self):
        with pytest.raises(SystemExit):
            make_parser().parse_args([])

    def test_unknown_verb_rejected(self):
        with pytest.raises(SystemExit):
            make_parser().parse_args(["explode"])


class TestLifecycle:
    def test_full_session_ping(self):
        code, text = run_cli(
            [
                "buildafi",
                "launchrunfarm",
                "infrasetup",
                "runworkload",
                "terminaterunfarm",
                "--topology", "single_rack",
                "--servers-per-rack", "4",
                "--duration-ms", "3",
                "--ping-count", "5",
            ]
        )
        assert code == 0
        assert "built QuadCore: agfi-" in text
        assert "f1.16xlarge" in text
        assert "simulation elaborated: 4 nodes" in text
        assert "mean RTT" in text
        assert "run farm terminated" in text

    def test_boot_workload(self):
        code, text = run_cli(
            [
                "buildafi",
                "launchrunfarm",
                "infrasetup",
                "runworkload",
                "--topology", "single_rack",
                "--servers-per-rack", "2",
                "--workload", "boot",
                "--duration-ms", "6",
            ]
        )
        assert code == 0
        assert "ran to" in text

    def test_supernode_flag_changes_mapping(self):
        _, standard = run_cli(
            ["launchrunfarm", "--topology", "two_tier", "--racks", "2",
             "--servers-per-rack", "8"]
        )
        _, supernode = run_cli(
            ["launchrunfarm", "--topology", "two_tier", "--racks", "2",
             "--servers-per-rack", "8", "--supernode"]
        )
        assert "'f1.16xlarge': 2" in standard
        assert "'f1.16xlarge': 1" in supernode

    def test_out_of_order_verbs_fail_loudly(self):
        from repro.manager.manager import ManagerError

        with pytest.raises(ManagerError):
            run_cli(["infrasetup", "--topology", "single_rack"])
