"""Manager CLI (repro.manager.cli)."""

import io
import json
import os

import pytest

from repro.manager.cli import main, make_parser


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


def run_cli_err(argv):
    out, err = io.StringIO(), io.StringIO()
    code = main(argv, out=out, err=err)
    return code, out.getvalue(), err.getvalue()


class TestParser:
    def test_verbs_required(self):
        with pytest.raises(SystemExit):
            make_parser().parse_args([])

    def test_unknown_verb_rejected(self):
        with pytest.raises(SystemExit):
            make_parser().parse_args(["explode"])


class TestLifecycle:
    def test_full_session_ping(self):
        code, text = run_cli(
            [
                "buildafi",
                "launchrunfarm",
                "infrasetup",
                "runworkload",
                "terminaterunfarm",
                "--topology", "single_rack",
                "--servers-per-rack", "4",
                "--duration-ms", "3",
                "--ping-count", "5",
            ]
        )
        assert code == 0
        assert "built QuadCore: agfi-" in text
        assert "f1.16xlarge" in text
        assert "simulation elaborated: 4 nodes" in text
        assert "mean RTT" in text
        assert "run farm terminated" in text

    def test_boot_workload(self):
        code, text = run_cli(
            [
                "buildafi",
                "launchrunfarm",
                "infrasetup",
                "runworkload",
                "--topology", "single_rack",
                "--servers-per-rack", "2",
                "--workload", "boot",
                "--duration-ms", "6",
            ]
        )
        assert code == 0
        assert "ran to" in text

    def test_supernode_flag_changes_mapping(self):
        _, standard = run_cli(
            ["launchrunfarm", "--topology", "two_tier", "--racks", "2",
             "--servers-per-rack", "8"]
        )
        _, supernode = run_cli(
            ["launchrunfarm", "--topology", "two_tier", "--racks", "2",
             "--servers-per-rack", "8", "--supernode"]
        )
        assert "'f1.16xlarge': 2" in standard
        assert "'f1.16xlarge': 1" in supernode

    def test_out_of_order_verbs_exit_nonzero_without_traceback(self):
        code, out, err = run_cli_err(
            ["infrasetup", "--topology", "single_rack"]
        )
        assert code == 1
        assert err.startswith("firesim: error: ")
        assert "launchrunfarm must run before infrasetup" in err
        assert "Traceback" not in err
        assert err.count("\n") == 1  # exactly one line

    def test_invalid_config_exits_nonzero(self):
        code, _, err = run_cli_err(
            ["launchrunfarm", "--topology", "single_rack",
             "--servers-per-rack", "0"]
        )
        assert code == 1
        assert err.startswith("firesim: error: ")

    def test_missing_fault_plan_file_exits_nonzero(self):
        code, _, err = run_cli_err(
            ["launchrunfarm", "--fault-plan", "/nonexistent/plan.json"]
        )
        assert code == 1
        assert "cannot read fault plan" in err


FULL_VERBS = ["buildafi", "launchrunfarm", "infrasetup", "runworkload"]
FULL_OPTS = [
    "--topology", "single_rack", "--servers-per-rack", "2",
    "--duration-ms", "2", "--ping-count", "3",
]
FULL_SESSION = FULL_VERBS + FULL_OPTS


class TestJsonMode:
    def test_json_prints_single_object_keyed_by_verb(self):
        code, text = run_cli(FULL_SESSION + ["--json"])
        assert code == 0
        document = json.loads(text)  # the whole output is one JSON object
        verbs = document["verbs"]
        assert verbs["buildafi"]["builds"][0]["config"] == "QuadCore"
        assert verbs["launchrunfarm"]["instances"] == {"f1.16xlarge": 1}
        assert verbs["infrasetup"] == {
            "nodes": 2, "switches": 1, "engine": "scalar",
        }
        assert verbs["runworkload"]["ping"]["samples"] == 2
        assert verbs["runworkload"]["ping"]["mean_rtt_us"] > 0

    def test_human_format_remains_default(self):
        code, text = run_cli(FULL_SESSION)
        assert code == 0
        with pytest.raises(ValueError):
            json.loads(text)


class TestStatusVerb:
    def test_status_reports_measured_rate_and_shares(self):
        code, text = run_cli(FULL_VERBS + ["status"] + FULL_OPTS)
        assert code == 0
        assert "measured rate:" in text
        assert "% of host time" in text
        assert "predicted rate:" in text
        assert "prediction error:" in text

    def test_status_json_summary(self):
        code, text = run_cli(FULL_VERBS + ["status"] + FULL_OPTS + ["--json"])
        status = json.loads(text)["verbs"]["status"]
        assert status["rate"]["rate_mhz"] > 0
        assert status["rate"]["rounds"] == 1000  # 2 ms / 6400-cycle quantum
        assert status["predicted_rate_mhz"] > 0
        assert sum(status["rate"]["host_time_shares"].values()) == (
            pytest.approx(1.0)
        )


class TestFaultedSession:
    PLAN = {
        "seed": 11,
        "faults": [
            {"kind": "instance-launch", "point": "launchrunfarm"},
            {"kind": "controller-crash", "point": "runworkload",
             "at_cycle": 1_000_000},
        ],
    }

    def _write_plan(self, tmp_path):
        plan_path = tmp_path / "plan.json"
        plan_path.write_text(json.dumps(self.PLAN))
        return str(plan_path)

    def test_faulted_session_matches_fault_free(self, tmp_path):
        argv = FULL_VERBS + ["status"] + FULL_OPTS + ["--json"]
        code, clean = run_cli(argv)
        assert code == 0
        chaos_argv = argv + [
            "--fault-plan", self._write_plan(tmp_path),
            "--checkpoint-interval", "0.25",
        ]
        code, faulted = run_cli(chaos_argv)
        assert code == 0
        clean_doc, faulted_doc = json.loads(clean), json.loads(faulted)
        # Recovery is cycle-exact: same target time, same RTT samples.
        assert (faulted_doc["verbs"]["runworkload"]["ping"]
                == clean_doc["verbs"]["runworkload"]["ping"])
        assert (faulted_doc["verbs"]["runworkload"]["target_ms"]
                == clean_doc["verbs"]["runworkload"]["target_ms"])
        resilience = faulted_doc["verbs"]["status"]["resilience"]
        assert resilience["faults_injected"] == 2
        assert resilience["retries"] >= 1
        assert resilience["restores"] == 1
        assert resilience["recoveries"] >= 2
        assert resilience["giveups"] == 0

    def test_status_text_surfaces_recovery_counts(self, tmp_path):
        code, text = run_cli(
            FULL_VERBS + ["status"] + FULL_OPTS + [
                "--fault-plan", self._write_plan(tmp_path),
            ]
        )
        assert code == 0
        assert "resilience: 2 faults injected" in text
        assert "1 checkpoint restores" in text
        assert "inject controller-crash at runworkload" in text

    def test_retry_budget_exhaustion_exits_nonzero(self, tmp_path):
        plan_path = tmp_path / "plan.json"
        plan_path.write_text(json.dumps({
            "seed": 0,
            "faults": [{"kind": "instance-launch",
                        "point": "launchrunfarm", "times": 9}],
        }))
        code, _, err = run_cli_err(
            ["launchrunfarm", "--topology", "single_rack",
             "--fault-plan", str(plan_path), "--max-retries", "2"]
        )
        assert code == 1
        assert "failed after 2 retries" in err


class TestTelemetryOut:
    def test_dump_produces_valid_artifacts(self, tmp_path):
        out_dir = str(tmp_path / "telemetry")
        code, text = run_cli(
            FULL_VERBS + ["terminaterunfarm"] + FULL_OPTS
            + ["--telemetry-out", out_dir]
        )
        assert code == 0
        assert "telemetry:" in text

        with open(os.path.join(out_dir, "metrics.json")) as fh:
            metrics_doc = json.load(fh)
        metrics = metrics_doc["metrics"]
        assert metrics["sim.rounds"] == 1000
        assert metrics["sim.cycles"] == 6_400_000
        assert metrics["sim.rate_mhz"] > 0
        switch_keys = [k for k in metrics if k.startswith("switch.")]
        assert any(k.endswith(".packets_dropped") for k in switch_keys)
        assert any(k.endswith(".bytes_out") for k in switch_keys)
        assert any(k.endswith(".bytes_in") for k in switch_keys)
        # Manager verb spans were recorded on the host track.
        assert metrics_doc["rate"]["rounds"] == 1000
        assert metrics["manager.runworkload.seconds"] > 0

        with open(os.path.join(out_dir, "trace.json")) as fh:
            trace = json.load(fh)
        events = trace["traceEvents"]
        assert events, "trace must not be empty"
        for event in events:
            assert {"name", "ph", "pid", "tid"} <= set(event)
        names = {e["name"] for e in events}
        assert {"buildafi", "runworkload", "terminaterunfarm"} <= names

        with open(os.path.join(out_dir, "metrics.csv")) as fh:
            assert fh.readline().strip() == "name,value"

    def test_telemetry_out_in_json_mode_lists_paths(self, tmp_path):
        out_dir = str(tmp_path / "telemetry")
        code, text = run_cli(
            FULL_SESSION + ["--telemetry-out", out_dir, "--json"]
        )
        document = json.loads(text)
        assert sorted(document["telemetry"]) == [
            "metrics.csv", "metrics.json", "trace.json",
        ]
        for path in document["telemetry"].values():
            assert os.path.exists(path)
