"""Target clock domain (repro.core.clock)."""

import pytest

from repro.core.clock import DEFAULT_CLOCK, TargetClock


class TestTargetClock:
    def test_default_is_3_2_ghz(self):
        assert DEFAULT_CLOCK.freq_hz == 3.2e9

    def test_period(self):
        assert TargetClock(1e9).period_s == pytest.approx(1e-9)

    def test_cycles_for_two_microseconds(self):
        assert DEFAULT_CLOCK.cycles(2e-6) == 6400

    def test_micros(self):
        assert DEFAULT_CLOCK.micros(6400) == pytest.approx(2.0)

    def test_cycles_per_microsecond(self):
        assert DEFAULT_CLOCK.cycles_per_microsecond() == pytest.approx(3200.0)

    def test_link_bandwidth(self):
        assert DEFAULT_CLOCK.link_bandwidth_bps() == pytest.approx(204.8e9)

    def test_invalid_frequency_rejected(self):
        with pytest.raises(ValueError):
            TargetClock(0)
        with pytest.raises(ValueError):
            TargetClock(-1e9)

    def test_clock_is_immutable(self):
        with pytest.raises(AttributeError):
            DEFAULT_CLOCK.freq_hz = 1e9  # type: ignore[misc]
