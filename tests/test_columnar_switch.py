"""Columnar vs scalar switch: bit-equality under randomized traffic.

The columnar fast path (``repro.perf.switch``) must be observably
indistinguishable from the scalar ``SwitchModel`` it shadows: identical
output flits (cycle, frame, last, index), identical ``SwitchStats``,
identical flushed queue/cursor/partial state, and identical trace-sink
event streams.  Hypothesis drives both implementations through the same
randomized scripts — multi-flit frames straddling window boundaries,
broadcasts, unroutable unicasts, buffer-bound drops, and MAC-table
version bumps mid-run — and asserts equality window by window.
"""

from hypothesis import given, settings, strategies as st

from repro.core.token import TokenBatch, TokenWindow
from repro.net.ethernet import BROADCAST_MAC, EthernetFrame, mac_address
from repro.net.switch import SwitchConfig, SwitchModel
from repro.obs.trace import TraceSink, set_trace_sink
from repro.perf.stream import TokenStream
from repro.perf.switch import ColumnarBatch, ColumnarSwitch

WINDOW = 64
NUM_PORTS = 4
#: MACs the table knows about (one per port); mac_address(77) is
#: deliberately absent so it exercises default-port/unroutable paths.
KNOWN_MACS = [mac_address(i) for i in range(NUM_PORTS)]
UNKNOWN_MAC = mac_address(77)


@st.composite
def traffic_script(draw):
    """A randomized multi-window drive plan for one switch."""
    windows = draw(st.integers(min_value=3, max_value=7))
    pace = draw(st.sampled_from([1, 2]))
    buffer_flits = draw(st.sampled_from([8, 24, 16384]))
    default_port = draw(st.sampled_from([None, 1]))
    injections = {}
    count = draw(st.integers(min_value=1, max_value=24))
    for _ in range(count):
        window = draw(st.integers(min_value=0, max_value=windows - 1))
        port = draw(st.integers(min_value=0, max_value=NUM_PORTS - 1))
        offset = draw(st.integers(min_value=0, max_value=WINDOW + 40))
        dst = draw(
            st.sampled_from(KNOWN_MACS + [BROADCAST_MAC, UNKNOWN_MAC])
        )
        size = draw(st.sampled_from([64, 200, 600]))
        frame = EthernetFrame(src=mac_address(port), dst=dst, size_bytes=size)
        injections.setdefault((window, port), []).append((offset, frame))
    # One flit per cycle per ingress port: prune overlapping injections.
    # Offsets may exceed the window; flits spill into later windows,
    # which is exactly the straddling-ingress case under test.
    for key, entries in injections.items():
        entries.sort(key=lambda entry: entry[0])
        pruned = []
        cursor = -1
        for offset, frame in entries:
            if offset > cursor:
                pruned.append((offset, frame))
                cursor = offset + frame.flit_count
        injections[key] = pruned
    # Optional mid-run route-table churn: (window, kind) applied before
    # that window ticks, on both implementations.
    bumps = []
    if draw(st.booleans()):
        bumps.append(
            (draw(st.integers(min_value=1, max_value=windows - 1)), "remap")
        )
    if draw(st.booleans()):
        bumps.append(
            (draw(st.integers(min_value=1, max_value=windows - 1)), "default")
        )
    return {
        "windows": windows,
        "pace": pace,
        "buffer_flits": buffer_flits,
        "default_port": default_port,
        "injections": injections,
        "bumps": bumps,
    }


def build_switch(script):
    config = SwitchConfig(
        num_ports=NUM_PORTS,
        min_latency_cycles=10,
        cycles_per_flit=script["pace"],
        buffer_flits=script["buffer_flits"],
    )
    table = {mac: port for port, mac in enumerate(KNOWN_MACS)}
    return SwitchModel(
        "sw", config, mac_table=table, default_port=script["default_port"]
    )


def window_inputs(script, window_index, as_streams):
    """This window's input batches, every ingress flit at its cycle."""
    start = window_index * WINDOW
    inputs = {}
    for port in range(NUM_PORTS):
        flits = {}
        for injected_window in range(window_index + 1):
            for offset, frame in script["injections"].get(
                (injected_window, port), []
            ):
                base = injected_window * WINDOW + offset
                for index, flit in enumerate(frame.to_flits()):
                    cycle = base + index * 1
                    if start <= cycle < start + WINDOW:
                        flits[cycle] = flit
        if as_streams:
            inputs[f"port{port}"] = TokenStream.from_flits(
                start, WINDOW, flits
            )
        else:
            batch = TokenBatch.empty(start, WINDOW)
            for cycle in sorted(flits):
                batch.add(cycle, flits[cycle])
            inputs[f"port{port}"] = batch
    return inputs


def apply_bumps(script, window_index, model):
    for bump_window, kind in script["bumps"]:
        if bump_window != window_index:
            continue
        if kind == "remap":
            # Move the unknown MAC into the table: bumps the version and
            # must invalidate both route caches.
            model.mac_table[UNKNOWN_MAC] = 2
        else:
            model.default_port = 3


def output_flits(batch):
    return [
        (cycle, flit.data.frame_id, flit.last, flit.index)
        for cycle, flit in sorted(batch.flits.items())
    ]


def queue_state(model):
    """Flushed scalar queue state, modulo the absolute seq counter."""
    return (
        [
            [
                (p.release_cycle, p.frame.frame_id, p.flits_emitted)
                for p in sorted(queue)
            ]
            for queue in model._out_queues
        ],
        list(model._port_next_free),
        [
            [(f.data.frame_id, f.last, f.index) for f in partial]
            for partial in model._partial
        ],
    )


class RecordingSink(TraceSink):
    enabled = True

    def __init__(self):
        self.events = []

    def target_span(self, name, cat, start_cycle, end_cycle,
                    track="target", args=None):
        self.events.append(("span", name, cat, start_cycle, end_cycle,
                            track, tuple(sorted((args or {}).items()))))

    def target_instant(self, name, cat, cycle, track="target", args=None):
        self.events.append(("instant", name, cat, cycle, track,
                            tuple(sorted((args or {}).items()))))


def run_pair(script, as_streams, traced):
    """Drive scalar and columnar twins; return their observations."""
    scalar = build_switch(script)
    shadowed = build_switch(script)
    assert shadowed.columnar_safe
    shadow = ColumnarSwitch(shadowed)
    shadow.adopt()
    observations = []
    scalar_sink = RecordingSink()
    columnar_sink = RecordingSink()
    try:
        for window_index in range(script["windows"] + 3):
            start = window_index * WINDOW
            window = TokenWindow(start, start + WINDOW)
            apply_bumps(script, window_index, scalar)
            apply_bumps(script, window_index, shadowed)
            if traced:
                set_trace_sink(scalar_sink)
            scalar_out = scalar.tick(
                window, window_inputs(script, window_index, False)
            )
            if traced:
                set_trace_sink(columnar_sink)
            columnar_out = shadow.step(
                window, window_inputs(script, window_index, as_streams)
            )
            if traced:
                set_trace_sink(None)
            for port in range(NUM_PORTS):
                key = f"port{port}"
                assert (
                    output_flits(scalar_out[key])
                    == output_flits(columnar_out[key])
                ), f"window {window_index} {key} flits diverge"
                out = columnar_out[key]
                if type(out) is ColumnarBatch:
                    assert out.start_cycle == start
                    assert out.length == WINDOW
                    assert out.valid_count == len(out.flits)
            observations.append(repr(scalar.stats))
            assert repr(scalar.stats) == repr(shadowed.stats), (
                f"stats diverge after window {window_index}"
            )
    finally:
        set_trace_sink(None)
    shadow.flush()
    assert queue_state(scalar) == queue_state(shadowed)
    assert repr(scalar.stats) == repr(shadowed.stats)
    if traced:
        assert scalar_sink.events == columnar_sink.events
    return observations


class TestColumnarEquality:
    @settings(max_examples=60, deadline=None)
    @given(script=traffic_script())
    def test_stream_inputs_bit_identical(self, script):
        run_pair(script, as_streams=True, traced=False)

    @settings(max_examples=40, deadline=None)
    @given(script=traffic_script())
    def test_batch_inputs_bit_identical(self, script):
        run_pair(script, as_streams=False, traced=False)

    @settings(max_examples=40, deadline=None)
    @given(script=traffic_script())
    def test_trace_events_bit_identical(self, script):
        """With a sink enabled the slow path must emit the exact scalar
        event stream — drops, enqueues, and dequeue spans interleaved in
        scalar pop order."""
        run_pair(script, as_streams=True, traced=True)

    def test_drop_storm_parity(self):
        """Deterministic worst case: heavy fan-in to one port with a
        tiny buffer forces interleaved drops and dequeues."""
        script = {
            "windows": 6,
            "pace": 1,
            "buffer_flits": 8,
            "default_port": None,
            "injections": {
                (w, p): [(0, EthernetFrame(
                    src=mac_address(p), dst=KNOWN_MACS[3], size_bytes=600,
                ))]
                for w in range(4) for p in range(3)
            },
            "bumps": [],
        }
        run_pair(script, as_streams=True, traced=True)

    def test_flush_resumes_scalar_run(self):
        """A scalar run picked up after flush continues bit-identically:
        adopt/flush round-trips mid-simulation state."""
        script = {
            "windows": 3,
            "pace": 1,
            "buffer_flits": 16384,
            "default_port": 1,
            "injections": {
                (0, 0): [(50, EthernetFrame(
                    src=mac_address(0), dst=KNOWN_MACS[2], size_bytes=600,
                ))],
                (1, 1): [(10, EthernetFrame(
                    src=mac_address(1), dst=UNKNOWN_MAC, size_bytes=200,
                ))],
            },
            "bumps": [],
        }
        scalar = build_switch(script)
        hybrid = build_switch(script)
        shadow = ColumnarSwitch(hybrid)
        shadow.adopt()
        # Windows 0-1 run columnar on one twin, scalar on the other...
        for window_index in range(2):
            start = window_index * WINDOW
            window = TokenWindow(start, start + WINDOW)
            scalar.tick(window, window_inputs(script, window_index, False))
            shadow.step(window, window_inputs(script, window_index, True))
            # The batched engine maintains this after every raw step.
            hybrid.current_cycle = window.end
        shadow.flush()
        # ...then both continue scalar; mid-run state must line up.
        for window_index in range(2, 6):
            start = window_index * WINDOW
            window = TokenWindow(start, start + WINDOW)
            a = scalar.tick(
                window, window_inputs(script, window_index, False)
            )
            b = hybrid.tick(
                window, window_inputs(script, window_index, False)
            )
            for port in range(NUM_PORTS):
                key = f"port{port}"
                assert output_flits(a[key]) == output_flits(b[key])
        assert repr(scalar.stats) == repr(hybrid.stats)
        assert queue_state(scalar) == queue_state(hybrid)
