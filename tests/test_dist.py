"""Distributed execution (repro.dist): serial equivalence + recovery.

The headline guarantee under test: partitioning a simulation across
worker processes changes *nothing* observable — cycle counts, switch
byte counters, tracer packet timestamps, and workload results are
bit-identical to the serial engine, for every topology/quantum/worker
combination tried.
"""

import io
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ConfigError
from repro.core.simulation import Simulation
from repro.dist import plan_from_assignment, plan_partitions, run_distributed
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec, WorkerCrash
from repro.manager.cli import main as cli_main
from repro.manager.manager import FireSimManager
from repro.manager.mapper import HostConfig, map_topology
from repro.manager.runfarm import RunFarmConfig, elaborate
from repro.manager.topology import single_rack, two_tier
from repro.manager.workload import WorkloadSpec
from repro.net.ethernet import mac_address
from repro.net.switch import SwitchConfig, SwitchModel
from repro.net.tracer import splice_tracer
from repro.swmodel.apps.ping import RESULT_KEY, make_ping_client
from repro.swmodel.server import ServerBlade

#: One FPGA per instance so every blade is its own partitionable shard.
ONE_FPGA = HostConfig(fpgas_per_instance=1)

TOPOLOGIES = {
    "single_rack_4": lambda: single_rack(4),
    "two_tier_2x2": lambda: two_tier(num_racks=2, servers_per_rack=2),
    "two_tier_4x2": lambda: two_tier(num_racks=4, servers_per_rack=2),
}

TARGET_CYCLES = 700_000


def build(topo_key, quantum_override=None):
    root = TOPOLOGIES[topo_key]()
    running = elaborate(root, RunFarmConfig(link_latency_cycles=640))
    if quantum_override is not None:
        running.simulation.quantum_override = quantum_override
    blades = running.blades
    last = max(blades)
    blades[0].spawn(
        "ping",
        make_ping_client(blades[last].mac, count=4, interval_cycles=50_000),
    )
    return running, root


def fingerprint(running):
    """Every externally observable artifact of a run, for equality."""
    sim = running.simulation
    return {
        "cycle": sim.current_cycle,
        "stats": (
            sim.stats.rounds,
            sim.stats.cycles,
            sim.stats.tokens_moved,
            sim.stats.valid_tokens_moved,
        ),
        # Positional, not by switch_id: ids come from a global counter
        # and differ between independently built (identical) topologies.
        "switches": [
            repr(sw.stats)
            for _, sw in sorted(running.switches.items())
        ],
        "blades": {
            index: {key: tuple(vals) for key, vals in blade.results.items()}
            for index, blade in running.blades.items()
        },
        "links": [
            (link.flits_a_to_b, link.flits_b_to_a) for link in sim.links
        ],
    }


_serial_cache = {}


def serial_fingerprint(topo_key, quantum_override):
    key = (topo_key, quantum_override)
    if key not in _serial_cache:
        running, _ = build(topo_key, quantum_override)
        running.simulation.run_until(TARGET_CYCLES)
        _serial_cache[key] = fingerprint(running)
    return _serial_cache[key]


class TestEquivalence:
    @pytest.mark.parametrize("workers", [2, 4])
    @pytest.mark.parametrize("quantum_override", [None, 160])
    @pytest.mark.parametrize("topo_key", sorted(TOPOLOGIES))
    def test_bit_identical_to_serial(
        self, topo_key, quantum_override, workers
    ):
        running, root = build(topo_key, quantum_override)
        deployment = map_topology(root, ONE_FPGA)
        plan = plan_partitions(running, deployment, workers)
        assert len(plan.boundaries(running.simulation)) > 0
        result = run_distributed(
            running.simulation, plan, TARGET_CYCLES
        )
        expected = serial_fingerprint(topo_key, quantum_override)
        assert fingerprint(running) == expected
        assert result.rounds == expected["stats"][0]
        # The workload actually crossed worker boundaries (otherwise the
        # equality above would be vacuous).
        assert expected["blades"][0][RESULT_KEY]

    def test_tracer_records_match_serial(self):
        """Packet timestamps recorded by spliced tracers are identical.

        frame_id is deliberately excluded from the comparison: it comes
        from a process-global counter, and forked workers each advance
        their own copy — cycle timing, addressing, and sizes are the
        semantically meaningful fields.
        """

        def run(distributed):
            sim = Simulation()
            a = sim.add_model(ServerBlade("node0", node_index=0))
            b = sim.add_model(ServerBlade("node1", node_index=1))
            switch = sim.add_model(
                SwitchModel(
                    "tor",
                    SwitchConfig(num_ports=2),
                    mac_table={mac_address(0): 0, mac_address(1): 1},
                )
            )
            tracer_a = splice_tracer(
                sim, a, "net", switch, "port0", 640, "trace-a"
            )
            tracer_b = splice_tracer(
                sim, switch, "port1", b, "net", 640, "trace-b"
            )
            a.spawn(
                "ping",
                make_ping_client(b.mac, count=3, interval_cycles=50_000),
            )
            if distributed:
                plan = plan_from_assignment(
                    {"node0": 0, "trace-a": 0, "tor": 1,
                     "trace-b": 1, "node1": 2}
                )
                run_distributed(sim, plan, 400_000)
            else:
                sim.run_until(400_000)

            def strip(records):
                return [
                    (r.src, r.dst, r.size_bytes, r.direction,
                     r.first_flit_cycle, r.last_flit_cycle)
                    for r in records
                ]

            return (
                strip(tracer_a.records),
                strip(tracer_b.records),
                tuple(a.results[RESULT_KEY]),
            )

        serial = run(False)
        assert serial[0], "serial run recorded no packets"
        assert run(True) == serial


class TestPartitioning:
    @given(
        workers=st.integers(min_value=1, max_value=5),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=20, deadline=None)
    def test_plan_is_deterministic(self, workers, seed):
        """Same topology + worker count → byte-identical plan, no matter
        the (seeded) RNG state of the elaborated models."""
        root = two_tier(num_racks=2, servers_per_rack=2)
        plans = []
        for spin in range(2):
            running = elaborate(
                root, RunFarmConfig(link_latency_cycles=640)
            )
            # Advance the run differently each time: model-internal RNG
            # and queue state must not leak into the plan.
            if spin == 1:
                running.simulation.run_cycles(640 * (1 + seed % 3))
            deployment = map_topology(root, ONE_FPGA)
            plans.append(plan_partitions(running, deployment, workers))
        assert plans[0].assignment == plans[1].assignment
        assert plans[0].worker_hosts == plans[1].worker_hosts
        # Full coverage, every worker non-empty.
        sim_keys = set(running.simulation.partition_keys())
        assert set(plans[0].assignment) == sim_keys
        assert set(plans[0].assignment.values()) == set(range(workers))

    def test_partition_keys_are_stable_names(self):
        running, _ = build("single_rack_4")
        sim = running.simulation
        keys = sim.partition_keys()
        assert keys == [model.name for model in sim.models]
        assert len(set(keys)) == len(keys)

    def test_more_workers_than_shards_is_config_error(self):
        running, root = build("single_rack_4")
        deployment = map_topology(root, ONE_FPGA)
        with pytest.raises(ConfigError, match="fewer than the 99 requested"):
            plan_partitions(running, deployment, 99)

    def test_empty_worker_rejected(self):
        with pytest.raises(ConfigError, match="have no models"):
            plan_from_assignment({"a": 0, "b": 2}, num_workers=3)

    def test_plan_must_cover_simulation(self):
        running, _ = build("single_rack_4")
        plan = plan_from_assignment({"node0": 0, "node1": 1})
        with pytest.raises(ConfigError, match="does not cover"):
            plan.validate_against(running.simulation)


class TestCrashRecovery:
    def _manager(self, fault_plan=None, workers=2):
        return FireSimManager(
            two_tier(num_racks=2, servers_per_rack=2),
            run_config=RunFarmConfig(link_latency_cycles=640),
            host_config=ONE_FPGA,
            fault_plan=fault_plan,
            workers=workers,
        )

    def _workload(self, manager):
        workload = WorkloadSpec("ping", duration_seconds=0.0002)
        target = manager.running.blade(3)
        workload.add_job(
            0,
            "ping",
            lambda blade: blade.spawn(
                "ping",
                make_ping_client(
                    target.mac, count=3, interval_cycles=50_000
                ),
            ),
        )
        return workload

    def _run(self, fault_plan=None, workers=2):
        manager = self._manager(fault_plan=fault_plan, workers=workers)
        manager.buildafi()
        manager.launchrunfarm()
        manager.infrasetup()
        result = manager.runworkload(self._workload(manager))
        return manager, result

    def test_worker_crash_resumes_on_survivors(self):
        """An injected mid-run crash kills a worker; the manager restores
        the pre-fork checkpoint and reruns on one fewer worker, with
        results identical to a run that never crashed."""
        crash = FaultPlan(
            seed=3,
            specs=(
                FaultSpec(
                    kind=FaultKind.CONTROLLER_CRASH,
                    point="runworkload",
                    at_cycle=100_000,
                ),
            ),
        )
        crashed_manager, crashed = self._run(fault_plan=crash)
        clean_manager, clean = self._run(fault_plan=None)
        assert crashed_manager.fault_stats.restores == 1
        assert crashed_manager.fault_stats.recoveries == 1
        assert crashed_manager.last_distributed.num_workers == 1
        assert clean_manager.last_distributed.num_workers == 2
        assert crashed.node_results == clean.node_results
        assert crashed.node_results[0][RESULT_KEY]

    def test_worker_crash_carries_host_shaped_target(self):
        fault = WorkerCrash("boom", worker_index=2, at_cycle=9)
        assert fault.target == "worker:2"
        assert fault.at_cycle == 9
        assert fault.kind is FaultKind.CONTROLLER_CRASH


class TestCLI:
    ARGS = [
        "--topology", "two_tier", "--racks", "2", "--servers-per-rack", "2",
        "--duration-ms", "0.2",
    ]

    def test_workers_flag_reports_per_partition_rates(self):
        out = io.StringIO()
        code = cli_main(
            self.ARGS + [
                "--workers", "2", "--json",
                "buildafi", "launchrunfarm", "infrasetup",
                "runworkload", "status",
            ],
            out=out,
        )
        assert code == 0
        document = json.loads(out.getvalue())
        distributed = document["verbs"]["runworkload"]["distributed"]
        assert distributed["num_workers"] == 2
        assert distributed["boundary_links"] > 0
        assert set(distributed["per_worker_rate_mhz"]) == {"0", "1"}
        status = document["verbs"]["status"]["distributed"]
        assert status["num_workers"] == 2

    def test_too_many_workers_is_one_line_error(self):
        out, err = io.StringIO(), io.StringIO()
        code = cli_main(
            self.ARGS + [
                "--workers", "99",
                "buildafi", "launchrunfarm", "infrasetup", "runworkload",
            ],
            out=out,
            err=err,
        )
        assert code == 1
        text = err.getvalue()
        assert len(text.strip().splitlines()) == 1
        assert text.startswith("firesim: error:")
        assert "requested workers" in text
