"""Coalesced wire format (repro.dist.frame) and the adaptive quantum.

The frame codec is the one payload layout both worker transports ship,
so it must round-trip every window representation the producers emit —
batched streams, scalar dict-flit batches, idle windows, and the fault
injector's LOST markers — inside a single multi-link payload.  The
adaptive round quantum rides the same wire: workers exchange one
coalesced message per ``round_quantum // quantum`` rounds, and the
result must stay bit-identical to the serial oracle (paper Fig 9:
batching is a rate lever, never a semantics lever).
"""

import numpy as np
import pytest

from repro import ConfigError
from repro.core.token import Flit, TokenBatch
from repro.dist import plan_from_assignment, plan_partitions, run_distributed
from repro.dist.frame import (
    DATA,
    ENTRY_BYTES,
    IDLE,
    LOST,
    decode_entries,
    encode_entries,
)
from repro.dist.remote_link import LostWindow
from repro.dist.shm import ShmRing, leaked_segments
from repro.dist.worker import PipeChannel
from repro.faults.plan import RingCorruption
from repro.host.perfmodel import exchange_quantum
from repro.manager.mapper import map_topology
from repro.manager.runfarm import RunFarmConfig, elaborate
from repro.manager.topology import two_tier
from repro.perf.stream import TokenStream
from repro.swmodel.apps.ping import RESULT_KEY, make_ping_client

from tests.test_dist import ONE_FPGA, TARGET_CYCLES, build, fingerprint


def stream_window(start, length, cycles_and_flits):
    """A busy batched-engine window (the producer's TokenStream form)."""
    cycles = np.asarray([c for c, _ in cycles_and_flits], dtype=np.int64)
    flits = [flit for _, flit in cycles_and_flits]
    return TokenStream.from_wire(start, length, cycles, flits)


def batch_window(start, length, flits_by_cycle):
    """A scalar-engine window (sparse dict of absolute cycle -> flit)."""
    return TokenBatch(start, length, flits_by_cycle)


def window_shape(entry):
    """Normalized (link, kind, start, length, [(cycle, payload)...])."""
    link, window = entry
    if isinstance(window, LostWindow):
        return (link, "lost", window.start_cycle, window.length, ())
    if isinstance(window, TokenStream):
        tokens = window.tokens
        valid = tuple(
            (int(row["cycle"]), row["flit"].data) for row in tokens
        )
        return (link, "data" if valid else "idle",
                window.start_cycle, window.length, valid)
    valid = tuple(
        (cycle, window.flits[cycle].data)
        for cycle in sorted(window.flits)
    )
    return (link, "data" if valid else "idle",
            window.start_cycle, window.length, valid)


class TestFrameCodec:
    def test_entry_table_packs_without_padding(self):
        assert ENTRY_BYTES == 25
        assert (DATA, IDLE, LOST) == (0, 1, 2)

    def test_multi_link_round_trip_mixed_kinds(self):
        """One frame carries several links' windows of every kind."""
        entries = [
            (0, stream_window(1000, 640, [(1001, Flit("a")),
                                          (1600, Flit("b", last=True))])),
            (3, batch_window(1000, 640, {1005: Flit("c")})),
            (1, TokenBatch(1000, 640)),          # idle, dict form
            (7, stream_window(1000, 640, [])),   # idle, stream form
            (2, LostWindow(1000, 640)),
        ]
        out = bytearray()
        count = encode_entries(entries, out)
        assert count == len(entries)
        decoded = decode_entries(bytes(out), count)
        assert [window_shape(e) for e in decoded] == [
            (0, "data", 1000, 640, ((1001, "a"), (1600, "b"))),
            (3, "data", 1000, 640, ((1005, "c"),)),
            (1, "idle", 1000, 640, ()),
            (7, "idle", 1000, 640, ()),
            (2, "lost", 1000, 640, ()),
        ]
        # Decoded lost windows keep their gap arithmetic.
        lost = decoded[4][1]
        assert isinstance(lost, LostWindow)
        assert lost.end_cycle == 1640

    def test_flit_metadata_survives(self):
        """last/index flags ride the blob, not just the payload."""
        flit = Flit("payload", last=True, index=3)
        out = bytearray()
        count = encode_entries(
            [(5, batch_window(0, 64, {7: flit}))], out
        )
        [(_, window)] = decode_entries(bytes(out), count)
        tokens = window.tokens
        restored = tokens["flit"][0]
        assert (restored.data, restored.last, restored.index) == (
            "payload", True, 3
        )

    def test_empty_frame_is_zero_bytes(self):
        """An all-quiet exchange costs nothing beyond the ring header."""
        out = bytearray()
        assert encode_entries([], out) == 0
        assert len(out) == 0
        assert decode_entries(b"", 0) == []

    def test_all_idle_frame_is_table_only(self):
        out = bytearray()
        count = encode_entries(
            [(0, TokenBatch(0, 64)), (1, TokenBatch(0, 64))], out
        )
        assert len(out) == count * ENTRY_BYTES  # no cycle column, no blob
        decoded = decode_entries(bytes(out), count)
        assert [window_shape(e)[1] for e in decoded] == ["idle", "idle"]


@pytest.fixture
def ring():
    ring = ShmRing.create(0, 1, capacity=1 << 16)
    yield ring
    ring.destroy()
    assert leaked_segments() == []


class TestCoalescedRing:
    def test_multi_link_per_peer_single_publish(self, ring):
        """All of a peer's links travel in one ring frame."""
        entries = [
            (0, stream_window(0, 640, [(5, Flit("x"))])),
            (1, TokenBatch(0, 640)),
            (2, stream_window(0, 640, [(10, Flit("y")), (11, Flit("z"))])),
        ]
        ring.send(0, entries)
        counters = ring.counters()
        assert counters["sent_messages"] == 1
        received = ring.recv(0)
        assert [window_shape(e) for e in received] == [
            window_shape(e) for e in entries
        ]

    def test_lost_window_inside_coalesced_frame(self, ring):
        """A LOST marker coexists with healthy windows in one frame."""
        ring.send(
            3,
            [
                (0, stream_window(0, 640, [(5, Flit("x"))])),
                (1, LostWindow(0, 640)),
                (2, TokenBatch(0, 640)),
            ],
        )
        received = ring.recv(3)
        kinds = [window_shape(e)[1] for e in received]
        assert kinds == ["data", "lost", "idle"]

    def test_corrupt_coalesced_frame_fails_payload_crc(self, ring):
        ring.corrupt_next_send = True
        ring.send(
            0,
            [
                (0, stream_window(0, 640, [(5, Flit("x"))])),
                (1, TokenBatch(0, 640)),
            ],
        )
        try:
            ring.recv(0)
        except RingCorruption as corruption:
            assert "payload failed its CRC32" in str(corruption)
            assert corruption.ring == "ring:0->1"
        else:
            pytest.fail("corrupted coalesced frame was decoded")

    def test_sequence_skew_detected_on_coalesced_frames(self, ring):
        ring.send(0, [(0, TokenBatch(0, 64))])
        ring._send_seq += 1  # one frame the reader never observes
        ring.send(1, [(0, TokenBatch(64, 64))])
        assert len(ring.recv(0)) == 1
        with pytest.raises(RingCorruption, match="sequence skew"):
            ring.recv(1)

    def test_nonblocking_recv_returns_none_until_published(self, ring):
        assert ring.recv(0, False) is None
        ring.send(0, [(0, TokenBatch(0, 64))])
        received = ring.recv(0, False)
        assert received is not None and len(received) == 1
        # The permit was consumed with the message: the ring is idle
        # again, not primed with a stranded wakeup.
        assert ring.recv(1, False) is None


class TestCoalescedPipe:
    def make_channel(self):
        import multiprocessing

        queue = multiprocessing.get_context("fork").Queue()
        return PipeChannel(queue, 0, 1, timeout_s=5.0)

    def test_round_trip_matches_ring_semantics(self):
        channel = self.make_channel()
        entries = [
            (0, stream_window(0, 640, [(5, Flit("x"))])),
            (1, LostWindow(0, 640)),
            (2, TokenBatch(0, 640)),
        ]
        channel.send(7, entries)
        received = channel.recv(7)
        assert [window_shape(e) for e in received] == [
            window_shape(e) for e in entries
        ]
        assert channel.counters() == {
            "sent_messages": 1, "recv_messages": 1,
        }

    def test_nonblocking_recv_returns_none_when_empty(self):
        channel = self.make_channel()
        assert channel.recv(0, False) is None


class TestAdaptiveQuantum:
    def test_exchange_quantum_is_floor_aligned(self):
        assert exchange_quantum(None, 160) == 160      # no boundaries
        assert exchange_quantum(160, 160) == 160       # no headroom
        assert exchange_quantum(640, 160) == 640       # exact multiple
        assert exchange_quantum(700, 160) == 640       # rounds down
        assert exchange_quantum(100, 160) == 160       # floor < quantum
        with pytest.raises(ValueError):
            exchange_quantum(640, 0)

    def test_boundary_latency_floor(self):
        running, root = build("two_tier_2x2")
        deployment = map_topology(root, ONE_FPGA)
        plan = plan_partitions(running, deployment, 2)
        floor = plan.boundary_latency_floor(running.simulation)
        assert floor is not None
        assert floor >= running.simulation.quantum
        lone = plan_from_assignment(
            {key: 0 for key in running.simulation.partition_keys()},
            num_workers=1,
        )
        assert lone.boundary_latency_floor(running.simulation) is None

    def test_explicit_round_quantum_must_be_multiple(self):
        running, root = build("two_tier_2x2")
        deployment = map_topology(root, ONE_FPGA)
        plan = plan_partitions(running, deployment, 2)
        with pytest.raises(ConfigError, match="multiple of the"):
            run_distributed(
                running.simulation, plan, TARGET_CYCLES,
                round_quantum=running.simulation.quantum + 1,
            )

    def test_explicit_round_quantum_capped_by_latency_floor(self):
        running, root = build("two_tier_2x2")
        deployment = map_topology(root, ONE_FPGA)
        plan = plan_partitions(running, deployment, 2)
        quantum = running.simulation.quantum
        floor = plan.boundary_latency_floor(running.simulation)
        too_big = (floor // quantum + 1) * quantum
        with pytest.raises(ConfigError, match="latency floor"):
            run_distributed(
                running.simulation, plan, TARGET_CYCLES,
                round_quantum=too_big,
            )


def hetero_build(engine="scalar"):
    """Two-tier target whose server links are 4x shorter than trunks.

    The global quantum follows the shortest link (160), while the
    partition's boundary (the rack trunks) stays at 640 — so the
    adaptive derivation batches 4 rounds per exchange.
    """
    root = two_tier(num_racks=2, servers_per_rack=2)
    running = elaborate(
        root,
        RunFarmConfig(
            link_latency_cycles=640,
            server_link_latency_cycles=160,
            engine=engine,
        ),
    )
    blades = running.blades
    last = max(blades)
    blades[0].spawn(
        "ping",
        make_ping_client(blades[last].mac, count=4, interval_cycles=50_000),
    )
    # Rack-aligned shards: boundary links are the 640-cycle trunks only.
    racks = [child for child in root.downlinks]
    rack0 = {f"switch{racks[0].switch_id}", "node0", "node1"}
    assignment = {
        key: 0 if key in rack0 else 1
        for key in running.simulation.partition_keys()
    }
    return running, plan_from_assignment(assignment, num_workers=2)


class TestExchangeRoundEquivalence:
    @pytest.fixture(scope="class")
    def serial_expected(self):
        running, _ = hetero_build()
        running.simulation.run_until(TARGET_CYCLES)
        return fingerprint(running)

    @pytest.mark.parametrize("engine", ["scalar", "batched"])
    @pytest.mark.parametrize("transport", ["pipe", "shm"])
    def test_batched_exchanges_stay_bit_identical(
        self, transport, engine, serial_expected
    ):
        running, plan = hetero_build(engine)
        sim = running.simulation
        assert sim.quantum == 160
        assert plan.boundary_latency_floor(sim) == 640
        result = run_distributed(
            sim, plan, TARGET_CYCLES, transport=transport
        )
        assert result.round_quantum == 640
        assert result.rounds_per_exchange == 4
        assert result.exchange_rounds == result.rounds // 4
        assert fingerprint(running) == serial_expected
        assert serial_expected["blades"][0][RESULT_KEY]

    def test_forced_per_round_exchange_matches_adaptive(
        self, serial_expected
    ):
        """round_quantum == quantum (the pre-adaptive wire cadence)
        produces the same bits — batching is pure scheduling."""
        running, plan = hetero_build()
        result = run_distributed(
            running.simulation, plan, TARGET_CYCLES,
            round_quantum=160,
        )
        assert result.rounds_per_exchange == 1
        assert result.exchange_rounds == result.rounds
        assert fingerprint(running) == serial_expected

    def test_result_dict_carries_exchange_fields(self, serial_expected):
        running, plan = hetero_build()
        result = run_distributed(running.simulation, plan, TARGET_CYCLES)
        doc = result.to_dict()
        assert doc["round_quantum"] == 640
        assert doc["rounds_per_exchange"] == 4
        assert doc["exchange_rounds"] == result.exchange_rounds
        assert "measured_critical_path_mhz" in doc
        assert "worker_cpu_seconds_max" in doc
