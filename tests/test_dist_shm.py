"""Shared-memory transport (repro.dist.shm): equivalence, gaps, leaks.

The shm ring is an optimisation, so everything observable must be
bit-identical to both the serial engine and the pipe transport; on top
of that it owns ``/dev/shm`` segments, so every exit path — normal
completion, worker crash, checkpoint-restore, fallback — must leave the
host clean (:func:`repro.dist.shm.leaked_segments` is the witness).
"""

import io
import json
import threading

import pytest

from repro.core.channel import Link
from repro.core.token import TokenBatch
from repro.dist import plan_partitions, run_distributed
from repro.dist.remote_link import LostWindow, deliver
from repro.dist.shm import ShmRing, leaked_segments
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec
from repro.manager.cli import main as cli_main
from repro.manager.manager import FireSimManager
from repro.manager.mapper import map_topology
from repro.manager.runfarm import RunFarmConfig
from repro.manager.topology import two_tier
from repro.manager.workload import WorkloadSpec
from repro.perf.stream import TokenStream
from repro.swmodel.apps.ping import RESULT_KEY, make_ping_client

from tests.test_dist import (
    ONE_FPGA,
    TARGET_CYCLES,
    build,
    fingerprint,
    serial_fingerprint,
)


def run_transport(topo_key, workers, transport, **kwargs):
    running, root = build(topo_key)
    deployment = map_topology(root, ONE_FPGA)
    plan = plan_partitions(running, deployment, workers)
    result = run_distributed(
        running.simulation, plan, TARGET_CYCLES,
        transport=transport, **kwargs,
    )
    return result, fingerprint(running)


class TestShmEquivalence:
    @pytest.mark.parametrize("workers", [2, 4])
    @pytest.mark.parametrize("topo_key", ["single_rack_4", "two_tier_2x2"])
    def test_bit_identical_to_serial_and_pipe(self, topo_key, workers):
        expected = serial_fingerprint(topo_key, None)
        shm_result, shm_fp = run_transport(topo_key, workers, "shm")
        _, pipe_fp = run_transport(topo_key, workers, "pipe")
        assert shm_result.transport == "shm"
        assert shm_result.channel_count > 0
        assert shm_fp == expected
        assert pipe_fp == expected  # and hence shm == pipe, bit for bit
        # The workload crossed worker boundaries, so the equality above
        # exercised the ring, and the run left /dev/shm clean.
        assert expected["blades"][0][RESULT_KEY]
        assert leaked_segments() == []

    def test_channels_skip_linkless_worker_pairs(self):
        """Directed channels exist only where boundary links do."""
        running, root = build("two_tier_2x2")
        deployment = map_topology(root, ONE_FPGA)
        plan = plan_partitions(running, deployment, 4)
        linked = set()
        for boundary in plan.boundaries(running.simulation):
            linked.add((boundary.worker_a, boundary.worker_b))
            linked.add((boundary.worker_b, boundary.worker_a))
        result = run_distributed(
            running.simulation, plan, TARGET_CYCLES, transport="shm"
        )
        assert result.channel_count == len(linked)
        assert result.channel_count < 4 * 3  # some pairs share no links
        assert leaked_segments() == []


class TestRingWire:
    """Direct ShmRing codec tests (single process, no semaphore peer)."""

    @pytest.fixture
    def ring(self):
        ring = ShmRing.create(0, 1, capacity=4096)
        try:
            yield ring
        finally:
            ring.destroy()
        assert leaked_segments() == []

    def test_lost_window_round_trips_through_header(self, ring):
        ring.send(7, [(5, LostWindow(1000, 640))])
        entries = ring.recv(7)
        assert len(entries) == 1
        link_index, window = entries[0]
        assert link_index == 5
        assert type(window) is LostWindow
        assert window.start_cycle == 1000
        assert window.length == 640
        assert window.end_cycle == 1640

    def test_received_lost_window_starves_the_consumer(self, ring):
        """The decoded LostWindow produces the same queue gap a local
        ``discard_tail`` would: later windows stay contiguous, but the
        consumer cannot advance past the hole."""
        ring.send(0, [(0, LostWindow(640, 640))])
        (_, lost), = ring.recv(0)
        link = Link(latency_cycles=640)
        endpoint = link.to_a
        endpoint.push(TokenBatch(0, 640))
        deliver(link, "a", lost)
        endpoint.push(TokenBatch(1280, 640))  # contiguous past the gap
        assert endpoint.available_tokens == 640  # stops at the hole
        endpoint.pop(640)
        assert endpoint.available_tokens == 0  # starving at cycle 640

    def test_idle_and_data_windows_round_trip(self, ring):
        busy = TokenBatch(640, 640)
        busy.add(650, "frame-a")
        busy.add(700, "frame-b")
        stream = TokenStream.from_flits(1280, 640, {1300: "frame-c"})
        ring.send(3, [(0, TokenBatch(0, 640)), (1, busy), (2, stream)])
        entries = ring.recv(3)
        assert [index for index, _ in entries] == [0, 1, 2]
        idle = entries[0][1]
        assert type(idle) is TokenBatch
        assert (idle.start_cycle, idle.length, idle.flits) == (0, 640, {})
        decoded = entries[1][1]
        assert isinstance(decoded, TokenStream)
        assert decoded.tokens["cycle"].tolist() == [650, 700]
        assert decoded.tokens["flit"].tolist() == ["frame-a", "frame-b"]
        restream = entries[2][1]
        assert restream.tokens["cycle"].tolist() == [1300]
        assert restream.tokens["flit"].tolist() == ["frame-c"]

    def test_out_of_order_round_tag_is_loud(self, ring):
        ring.send(3, [])
        with pytest.raises(Exception, match="out-of-order"):
            ring.recv(4)

    def test_ring_full_is_backpressure_not_an_error(self):
        """A message larger than the whole ring streams through in
        chunks while a reader drains — the writer never errors and the
        bytes survive intact."""
        ring = ShmRing.create(0, 1, capacity=128)
        try:
            batch = TokenBatch(0, 6400)
            for cycle in range(0, 6400, 64):
                batch.add(cycle, "payload-" + "x" * 40)
            received = []
            reader = threading.Thread(
                target=lambda: received.append(ring.recv(0))
            )
            reader.start()
            ring.send(0, [(9, batch)])  # >> 128 bytes: must stream
            reader.join(timeout=30)
            assert not reader.is_alive()
            (link_index, window), = received[0]
            assert link_index == 9
            assert window.tokens["cycle"].tolist() == sorted(batch.flits)
            assert window.tokens["flit"].tolist() == [
                batch.flits[c] for c in sorted(batch.flits)
            ]
        finally:
            ring.destroy()
        assert leaked_segments() == []

    def test_undersized_capacity_rejected(self):
        with pytest.raises(ValueError, match="capacity too small"):
            ShmRing.create(0, 1, capacity=4)


class TestFallback:
    def _deny_shm(self, monkeypatch):
        def deny(*args, **kwargs):
            raise PermissionError("/dev/shm: permission denied (test)")

        monkeypatch.setattr(
            "repro.dist.shm.shared_memory.SharedMemory", deny
        )

    def test_falls_back_to_pipe_when_shm_denied(self, monkeypatch):
        self._deny_shm(monkeypatch)
        result, fp = run_transport("single_rack_4", 2, "shm")
        assert result.transport == "pipe"  # degraded, not dead
        assert fp == serial_fingerprint("single_rack_4", None)
        assert leaked_segments() == []

    def test_manager_counts_fallbacks(self, monkeypatch):
        self._deny_shm(monkeypatch)
        manager, _ = _run_managed(transport="shm")
        assert manager.last_distributed.transport == "pipe"
        assert manager.fault_stats.shm_fallbacks == 1
        assert manager.resilience_summary()["shm_fallbacks"] == 1

    def test_unknown_transport_rejected(self):
        with pytest.raises(Exception, match="unknown transport"):
            run_transport("single_rack_4", 2, "carrier-pigeon")


def _run_managed(fault_plan=None, workers=2, transport="pipe"):
    manager = FireSimManager(
        two_tier(num_racks=2, servers_per_rack=2),
        run_config=RunFarmConfig(link_latency_cycles=640),
        host_config=ONE_FPGA,
        fault_plan=fault_plan,
        workers=workers,
        transport=transport,
    )
    manager.buildafi()
    manager.launchrunfarm()
    manager.infrasetup()
    workload = WorkloadSpec("ping", duration_seconds=0.0002)
    target = manager.running.blade(3)
    workload.add_job(
        0,
        "ping",
        lambda blade: blade.spawn(
            "ping",
            make_ping_client(target.mac, count=3, interval_cycles=50_000),
        ),
    )
    result = manager.runworkload(workload)
    return manager, result


class TestCrashLeavesNoSegments:
    def test_worker_crash_recovery_leaves_shm_clean(self):
        """A mid-run crash tears down through run_distributed's finally,
        so the restore + rerun sequence leaks no segments and still
        produces bit-identical results."""
        crash = FaultPlan(
            seed=3,
            specs=(
                FaultSpec(
                    kind=FaultKind.CONTROLLER_CRASH,
                    point="runworkload",
                    at_cycle=100_000,
                ),
            ),
        )
        crashed_manager, crashed = _run_managed(
            fault_plan=crash, transport="shm"
        )
        clean_manager, clean = _run_managed(transport="shm")
        assert crashed_manager.fault_stats.restores == 1
        assert crashed_manager.fault_stats.shm_fallbacks == 0
        assert crashed.node_results == clean.node_results
        assert crashed.node_results[0][RESULT_KEY]
        assert leaked_segments() == []


class TestCLI:
    ARGS = [
        "--topology", "two_tier", "--racks", "2", "--servers-per-rack", "2",
        "--duration-ms", "0.2",
    ]

    def test_transport_flag_surfaces_ring_counts(self):
        out = io.StringIO()
        code = cli_main(
            self.ARGS + [
                "--workers", "2", "--transport", "shm", "--json",
                "buildafi", "launchrunfarm", "infrasetup",
                "runworkload", "status",
            ],
            out=out,
        )
        assert code == 0
        document = json.loads(out.getvalue())
        distributed = document["verbs"]["runworkload"]["distributed"]
        assert distributed["transport"] == "shm"
        assert distributed["channels"] > 0
        status = document["verbs"]["status"]["distributed"]
        assert status["transport"] == "shm"
        assert status["channels"] == distributed["channels"]
        assert leaked_segments() == []

    def test_status_text_names_the_transport(self):
        out = io.StringIO()
        code = cli_main(
            self.ARGS + [
                "--workers", "2", "--transport", "shm",
                "buildafi", "launchrunfarm", "infrasetup",
                "runworkload", "status",
            ],
            out=out,
        )
        assert code == 0
        assert "shm channels" in out.getvalue()
