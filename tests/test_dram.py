"""DDR3 DRAM timing model (repro.tile.dram)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.tile.dram import DRAMConfig, DRAMModel


def fresh_dram(**kwargs):
    return DRAMModel(DRAMConfig(**kwargs))


class TestRowBuffer:
    def test_first_access_is_a_row_miss(self):
        dram = fresh_dram()
        dram.access(0, 0)
        assert dram.stats.row_misses == 1

    def test_same_row_hits(self):
        dram = fresh_dram()
        # Lines interleave across banks at 64 B; the same (bank, row)
        # repeats every banks*channels*64 bytes.
        same_bank_stride = 64 * dram.config.banks_per_channel
        done = dram.access(0, 0)
        dram.access(done, same_bank_stride)  # same bank, same row
        assert dram.stats.row_hits == 1

    def test_row_hit_faster_than_miss(self):
        dram = fresh_dram()
        same_bank_stride = 64 * dram.config.banks_per_channel
        miss_done = dram.access(0, 0)
        miss_latency = miss_done
        hit_done = dram.access(miss_done, same_bank_stride)
        hit_latency = hit_done - miss_done
        assert hit_latency < miss_latency

    def test_row_conflict_slowest(self):
        dram = fresh_dram()
        config = dram.config
        # Two addresses in the same bank, different rows: stride by
        # row_bytes * banks * channels.
        stride = config.row_bytes * config.banks_per_channel * config.num_channels
        first_done = dram.access(0, 0)
        conflict_done = dram.access(first_done, stride)
        conflict_latency = conflict_done - first_done
        hit_probe = fresh_dram()
        base = hit_probe.access(0, 0)
        hit_latency = hit_probe.access(base, 64) - base
        assert conflict_latency > hit_latency
        assert dram.stats.row_conflicts == 1


class TestChannelBus:
    def test_bus_serializes_concurrent_bursts(self):
        dram = fresh_dram(banks_per_channel=8)
        # Issue to two different banks at the same cycle: the second
        # burst must wait for the first on the shared data bus.
        done_a = dram.access(0, 0)
        done_b = dram.access(0, 64 * dram.config.num_channels * 1)  # other bank
        assert done_b != done_a

    def test_multi_channel_parallelism(self):
        single = fresh_dram(num_channels=1)
        quad = fresh_dram(num_channels=4)
        # Four 64-byte accesses striped across channels finish sooner
        # with four channels.
        single_done = max(single.access(0, i * 64) for i in range(4))
        quad_done = max(quad.access(0, i * 64) for i in range(4))
        assert quad_done < single_done


class TestAccessBytes:
    def test_multi_line_access_covers_size(self):
        dram = fresh_dram()
        completion = dram.access_bytes(0, 0, 256)
        assert dram.stats.reads == 4  # 256 B = 4 bursts
        assert completion > 0

    def test_bad_size_rejected(self):
        with pytest.raises(ValueError):
            fresh_dram().access_bytes(0, 0, 0)

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError):
            fresh_dram().access(0, -64)


class TestMonotonicity:
    @settings(max_examples=30)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=2**24),
                st.booleans(),
            ),
            min_size=1,
            max_size=40,
        )
    )
    def test_completions_never_precede_issue(self, accesses):
        dram = fresh_dram()
        cycle = 0
        for addr, is_write in accesses:
            done = dram.access(cycle, addr * 64, is_write)
            assert done > cycle
            cycle = done

    def test_stats_read_write_split(self):
        dram = fresh_dram()
        dram.access(0, 0, is_write=False)
        dram.access(100, 64, is_write=True)
        assert dram.stats.reads == 1
        assert dram.stats.writes == 1

    def test_idle_latency_positive(self):
        assert fresh_dram().idle_latency_cycles > 0
