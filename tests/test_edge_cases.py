"""Edge-case coverage across subsystems."""

import pytest

from repro.core.token import TokenBatch, TokenWindow
from repro.manager.runfarm import elaborate
from repro.manager.topology import single_rack, two_tier
from repro.net.ethernet import BROADCAST_MAC, EthernetFrame, mac_address
from repro.nic.nic import NIC, NICConfig
from repro.swmodel.apps.memcached import (
    MemcachedConfig,
    start_memcached,
    worker_port,
)
from repro.swmodel.netstack import PROTO_UDP, Socket
from repro.swmodel.process import Send
from repro.tile.caches import CacheModel, L1D_CONFIG, L2_CONFIG, MemoryHierarchy
from repro.tile.dram import DRAMModel


class TestNICPartialPackets:
    def test_rx_packet_straddling_windows_delivers_once(self):
        hierarchy = MemoryHierarchy(
            CacheModel("l1", L1D_CONFIG), CacheModel("l2", L2_CONFIG), DRAMModel()
        )
        nic = NIC("nic", hierarchy, NICConfig())
        frame = EthernetFrame(src=1, dst=2, size_bytes=128)  # 16 flits
        flits = frame.to_flits()
        # First window carries the first 10 flits...
        first = TokenBatch.empty(0, 10)
        for index in range(10):
            first.add(index, flits[index])
        nic.receive_tokens(first)
        assert nic.stats.rx_frames == 0  # incomplete
        # ...second window carries the rest.
        second = TokenBatch.empty(10, 10)
        for index in range(10, 16):
            second.add(index, flits[index])
        nic.receive_tokens(second)
        assert nic.stats.rx_frames == 1


class TestBroadcast:
    def test_broadcast_reaches_every_other_node(self):
        sim = elaborate(two_tier(num_racks=2, servers_per_rack=2))
        seen = {index: [] for index in range(4)}
        for index in range(4):
            sim.blade(index).kernel.register_raw_handler(
                lambda cy, f, i=index: seen[i].append(f.payload)
            )
        from repro.swmodel.process import SendRaw

        def announcer(api):
            yield SendRaw(dst_mac=BROADCAST_MAC, payload=("hello",),
                          frame_bytes=64)

        sim.blade(0).spawn("announce", announcer)
        sim.run_seconds(0.001)
        assert not seen[0]  # never echoed back to the sender
        for index in (1, 2, 3):
            assert seen[index] == [("hello",)]


class TestSocketBackpressure:
    def test_socket_queue_overflow_drops(self):
        sock = Socket(PROTO_UDP, 9)
        sock.max_queue = 2
        from repro.swmodel.netstack import Datagram

        for index in range(3):
            sock.deliver(
                Datagram(PROTO_UDP, 0, 9, payload=index, payload_bytes=8)
            )
        assert len(sock.queue) == 2
        assert sock.dropped == 1


class TestMemcachedShutdown:
    def test_shutdown_message_stops_worker(self):
        sim = elaborate(single_rack(2))
        server = sim.blade(0)
        start_memcached(server, MemcachedConfig(num_threads=1))

        def killer(api):
            yield Send(
                dst_mac=server.mac,
                payload="shutdown",
                payload_bytes=64,
                proto=PROTO_UDP,
                dport=worker_port(0),
            )

        sim.blade(1).spawn("killer", killer)
        sim.run_seconds(0.002)
        from repro.swmodel.process import ThreadState

        worker = next(
            t
            for t in server.kernel.scheduler.threads
            if t.name == "memcached-0"
        )
        assert worker.state == ThreadState.DONE


class TestPerfModelScaling:
    def test_supernode_pcie_carries_4x_payload(self):
        from repro.host.perfmodel import SimulationRateModel, SwitchPlacement

        model = SimulationRateModel()
        standard = model.estimate(6400, [SwitchPlacement(8)], blades_per_fpga=1)
        supernode = model.estimate(6400, [SwitchPlacement(8)], blades_per_fpga=4)
        assert supernode.stage_times_s["pcie"] > standard.stage_times_s["pcie"]

    def test_socket_ports_lengthen_switch_chain(self):
        from repro.host.perfmodel import SimulationRateModel, SwitchPlacement

        model = SimulationRateModel()
        local = model.estimate(6400, [SwitchPlacement(8, 0)])
        remote = model.estimate(6400, [SwitchPlacement(8, 8)])
        assert remote.rate_hz < local.rate_hz


class TestWindowValidation:
    def test_blade_rejects_wrong_window_resume(self):
        from repro.swmodel.server import ServerBlade

        blade = ServerBlade("n", node_index=0)
        blade.tick(TokenWindow(0, 100), {"net": TokenBatch.empty(0, 100)})
        with pytest.raises(ValueError):
            blade.tick(TokenWindow(200, 300), {"net": TokenBatch.empty(200, 100)})
