"""Ethernet frames and addressing (repro.net.ethernet)."""

import pytest
from hypothesis import given, strategies as st

from repro.net.ethernet import (
    BROADCAST_MAC,
    EthernetFrame,
    HEADER_BYTES,
    MIN_FRAME_BYTES,
    MTU_BYTES,
    mac_address,
    segment_bytes,
)


class TestMacAddress:
    def test_locally_administered_prefix(self):
        assert mac_address(0) == 0x02_00_00_00_00_00

    def test_deterministic_and_unique(self):
        macs = {mac_address(i) for i in range(1000)}
        assert len(macs) == 1000

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            mac_address(-1)
        with pytest.raises(ValueError):
            mac_address(2**24)


class TestEthernetFrame:
    def test_runt_frames_padded_to_minimum(self):
        frame = EthernetFrame(src=1, dst=2, size_bytes=10)
        assert frame.size_bytes == MIN_FRAME_BYTES

    def test_oversize_frame_rejected(self):
        with pytest.raises(ValueError, match="segment"):
            EthernetFrame(src=1, dst=2, size_bytes=MTU_BYTES + HEADER_BYTES + 1)

    def test_flit_count(self):
        frame = EthernetFrame(src=1, dst=2, size_bytes=1514)
        assert frame.flit_count == 190

    def test_to_flits_marks_last(self):
        frame = EthernetFrame(src=1, dst=2, size_bytes=64)
        flits = frame.to_flits()
        assert len(flits) == 8
        assert all(not f.last for f in flits[:-1])
        assert flits[-1].last
        assert [f.index for f in flits] == list(range(8))

    def test_frame_ids_unique(self):
        a = EthernetFrame(src=1, dst=2, size_bytes=64)
        b = EthernetFrame(src=1, dst=2, size_bytes=64)
        assert a.frame_id != b.frame_id

    def test_flits_reference_frame(self):
        frame = EthernetFrame(src=1, dst=2, size_bytes=64, payload="hi")
        assert all(f.data is frame for f in frame.to_flits())


class TestSegmentBytes:
    def test_exact_example(self):
        assert segment_bytes(3000, mss=1460) == [1460, 1460, 80]

    def test_zero_bytes(self):
        assert segment_bytes(0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            segment_bytes(-1)

    def test_bad_mss_rejected(self):
        with pytest.raises(ValueError):
            segment_bytes(100, mss=0)

    @given(
        total=st.integers(min_value=0, max_value=10**5),
        mss=st.integers(min_value=1, max_value=1460),
    )
    def test_segments_sum_to_total_and_respect_mss(self, total, mss):
        segments = segment_bytes(total, mss=mss)
        assert sum(segments) == total
        assert all(0 < s <= mss for s in segments)
        # Only the final segment may be partial.
        assert all(s == mss for s in segments[:-1])

    def test_broadcast_constant_is_48_bits(self):
        assert BROADCAST_MAC == (1 << 48) - (1 << 32) + 0xFFFFFFFF or True
        assert BROADCAST_MAC == 0xFFFF_FFFF_FFFF
