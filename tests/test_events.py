"""Deterministic event queue (repro.core.events)."""

import pytest

from repro.core.events import EventQueue


class TestEventQueue:
    def test_fires_in_cycle_order(self):
        queue = EventQueue()
        fired = []
        queue.schedule(20, lambda c: fired.append(("b", c)))
        queue.schedule(10, lambda c: fired.append(("a", c)))
        queue.run_until(100)
        assert fired == [("a", 10), ("b", 20)]

    def test_same_cycle_fires_in_insertion_order(self):
        queue = EventQueue()
        fired = []
        for tag in "abc":
            queue.schedule(5, lambda c, t=tag: fired.append(t))
        queue.run_until(6)
        assert fired == ["a", "b", "c"]

    def test_run_until_is_exclusive(self):
        queue = EventQueue()
        fired = []
        queue.schedule(10, lambda c: fired.append(c))
        queue.run_until(10)
        assert fired == []
        queue.run_until(11)
        assert fired == [10]

    def test_events_scheduled_inside_window_fire(self):
        queue = EventQueue()
        fired = []

        def chain(cycle):
            fired.append(cycle)
            if cycle < 5:
                queue.schedule(cycle + 1, chain)

        queue.schedule(0, chain)
        queue.run_until(10)
        assert fired == [0, 1, 2, 3, 4, 5]

    def test_cancel(self):
        queue = EventQueue()
        fired = []
        handle = queue.schedule(5, lambda c: fired.append("cancelled"))
        queue.schedule(6, lambda c: fired.append("kept"))
        queue.cancel(handle)
        queue.run_until(10)
        assert fired == ["kept"]

    def test_next_cycle_skips_cancelled(self):
        queue = EventQueue()
        handle = queue.schedule(5, lambda c: None)
        queue.schedule(9, lambda c: None)
        queue.cancel(handle)
        assert queue.next_cycle() == 9

    def test_len_accounts_for_cancellations(self):
        queue = EventQueue()
        handle = queue.schedule(1, lambda c: None)
        queue.schedule(2, lambda c: None)
        queue.cancel(handle)
        assert len(queue) == 1

    def test_negative_cycle_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().schedule(-1, lambda c: None)

    def test_empty_property(self):
        queue = EventQueue()
        assert queue.empty
        queue.schedule(1, lambda c: None)
        assert not queue.empty

    def test_run_until_returns_fired_count(self):
        queue = EventQueue()
        for cycle in range(5):
            queue.schedule(cycle, lambda c: None)
        assert queue.run_until(3) == 3
        assert queue.run_until(100) == 2
