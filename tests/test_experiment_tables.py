"""Every experiment's table() renders the rows the paper reports."""

import pytest

from repro.experiments import (
    fig5_ping,
    fig8_simrate,
    fig9_latency_sweep,
    fig11_pfa,
    sec5c_scale,
    sec7_comparison,
)


class TestTableRendering:
    def test_fig8_table_mentions_anchor(self):
        text = str(fig8_simrate.run(node_counts=(1024,)).table())
        assert "3.42" in text
        assert "1024" in text

    def test_fig9_table_has_batch_column(self):
        text = str(fig9_latency_sweep.run(latencies_cycles=(6400,)).table())
        assert "6400" in text
        assert "batch" in text

    def test_sec5c_table_lists_every_headline(self):
        text = str(sec5c_scale.run().table())
        for fragment in ("32", "100.00", "438.40", "12.80", "3.42", "4096"):
            assert fragment in text

    def test_fig11_table_reports_both_workloads(self):
        result = fig11_pfa.run(fractions=(0.5,), quick=True)
        text = str(result.table())
        assert "genome" in text and "qsort" in text

    def test_sec7_table_reports_fidelity_columns(self):
        text = str(sec7_comparison.run(include_measured=False).table())
        assert "cycle-exact" in text
        assert "FireSim" in text

    def test_fig5_point_overhead_property(self):
        point = fig5_ping.PingPoint(2.0, 8.01, 42.18)
        assert point.overhead_us == pytest.approx(34.17)
