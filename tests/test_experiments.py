"""Experiment harness smoke tests: every table/figure module runs and
reproduces the paper's qualitative result at reduced scale.  Full-scale
runs live in benchmarks/."""

import pytest

from repro.experiments import (
    fig5_ping,
    fig6_saturation,
    fig7_memcached,
    fig8_simrate,
    fig9_latency_sweep,
    fig11_pfa,
    sec4b_iperf,
    sec4c_baremetal,
    sec5c_scale,
    table3_datacenter,
)
from repro.experiments.common import Table, cycles_to_us, percentile, us_to_cycles


class TestCommonHelpers:
    def test_unit_roundtrip(self):
        assert us_to_cycles(2.0) == 6400
        assert cycles_to_us(6400) == pytest.approx(2.0)

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1], 0)

    def test_table_rendering(self):
        table = Table("t", ["a", "b"])
        table.add_row(1, 2.5)
        text = str(table)
        assert "a" in text and "2.50" in text
        with pytest.raises(ValueError):
            table.add_row(1)


class TestFig5:
    def test_overhead_constant_across_latencies(self):
        result = fig5_ping.run(latencies_us=(1.0, 4.0), quick=True)
        overheads = [p.overhead_us for p in result.points]
        assert overheads[0] == pytest.approx(overheads[1], abs=0.5)
        # The paper's ~34 us Linux stack offset.
        assert 30 < overheads[0] < 38

    def test_measured_parallels_ideal(self):
        result = fig5_ping.run(latencies_us=(1.0, 4.0), quick=True)
        deltas = [
            p.measured_rtt_us - p.ideal_rtt_us for p in result.points
        ]
        assert max(deltas) - min(deltas) < 1.0


class TestSec4bIperf:
    def test_tcp_ceiling_near_1_4_gbps(self):
        result = sec4b_iperf.run(quick=True)
        assert 1.1 < result.goodput_gbps < 1.7


class TestSec4cBaremetal:
    def test_nic_drives_about_100_gbps(self):
        result = sec4c_baremetal.run(quick=True)
        assert 85 < result.bandwidth_gbps < 125
        assert result.in_order


class TestFig6:
    def test_low_rate_never_saturates(self):
        series = fig6_saturation.run_rate(
            1.0, num_senders=4, stagger_us=20, tail_us=60, bucket_us=20
        )
        assert series.peak_gbps < 10  # 4 x 1 Gbit/s << 200


class TestFig7:
    def test_point_collects_percentiles(self):
        point = fig7_memcached.run_point(
            fig7_memcached.CONFIGS["4 threads"],
            "4 threads",
            30_000,
            measure_seconds=0.008,
            warmup_seconds=0.002,
        )
        assert point.p95_us >= point.p50_us > 0
        assert point.achieved_qps > 10_000


class TestFig8:
    def test_rate_monotonically_decreases(self):
        result = fig8_simrate.run(node_counts=(2, 16, 128, 1024))
        standard = [p.standard_mhz for p in result.points]
        assert standard == sorted(standard, reverse=True)

    def test_1024_supernode_anchor(self):
        result = fig8_simrate.run(node_counts=(1024,))
        assert result.points[0].supernode_mhz == pytest.approx(3.42, abs=0.15)


class TestFig9:
    def test_rate_grows_with_batch_size(self):
        result = fig9_latency_sweep.run(latencies_cycles=(320, 3200, 25600))
        rates = [p.rate_mhz for p in result.points]
        assert rates == sorted(rates)

    def test_functional_probe_runs(self):
        points = fig9_latency_sweep.run_functional_probe(
            latencies_cycles=(800, 6400), target_cycles=64_000
        )
        assert len(points) == 2
        assert all(p.rate_mhz > 0 for p in points)


class TestTable3:
    def test_median_rises_per_tier(self):
        shape = table3_datacenter.DatacenterShape(
            num_aggregation=2, racks_per_aggregation=2, servers_per_rack=4
        )
        rows = [
            table3_datacenter.run_pairing(
                pairing, shape, per_pair_qps=4000, measure_seconds=0.006
            )
            for pairing in table3_datacenter.PAIRINGS
        ]
        p50s = [r.p50_us for r in rows]
        assert p50s[0] < p50s[1] < p50s[2]
        # Each tier adds ~4 link latencies (+switching) = ~8 us.
        assert p50s[1] - p50s[0] == pytest.approx(8.0, abs=2.5)
        assert p50s[2] - p50s[1] == pytest.approx(8.0, abs=2.5)

    def test_pairings_cover_all_nodes(self):
        shape = table3_datacenter.DatacenterShape()
        for pairing in table3_datacenter.PAIRINGS:
            pairs = table3_datacenter._pair_nodes(shape, pairing)
            servers = {s for s, _ in pairs}
            clients = {c for _, c in pairs}
            assert len(pairs) == shape.num_nodes // 2
            assert not servers & clients

    def test_cross_dc_pairs_span_aggregation_groups(self):
        shape = table3_datacenter.DatacenterShape()
        racks_per_agg = shape.racks_per_aggregation
        per_rack = shape.servers_per_rack
        for server, client in table3_datacenter._pair_nodes(
            shape, "cross-datacenter"
        ):
            server_agg = (server // per_rack) // racks_per_agg
            client_agg = (client // per_rack) // racks_per_agg
            assert server_agg != client_agg


class TestSec5c:
    def test_headline_numbers(self):
        result = sec5c_scale.run()
        assert result.num_nodes == 1024
        assert result.num_cores == 4096
        assert result.num_f1 == 32
        assert result.num_m4 == 5
        assert result.spot_per_hour == pytest.approx(100.0)
        assert result.on_demand_per_hour == pytest.approx(438.4)
        assert result.fpga_value_musd == pytest.approx(12.8)
        assert result.sim_rate_mhz == pytest.approx(3.42, abs=0.15)
        assert result.slowdown < 1000
        assert result.aggregate_bips == pytest.approx(14.0, abs=1.0)
        assert result.single_node_lut_fraction == pytest.approx(0.326)
        assert result.supernode_lut_fraction == pytest.approx(0.758)


class TestFig11:
    def test_pfa_beats_software_paging(self):
        result = fig11_pfa.run(fractions=(0.25, 0.75), quick=True)
        for point in result.points:
            assert point.pfa_slowdown < point.sw_slowdown
            assert point.evictions_equal
            assert 1.8 < point.metadata_ratio < 3.5

    def test_genome_improvement_near_paper(self):
        result = fig11_pfa.run(fractions=(0.125,), quick=True)
        assert result.best_improvement("genome") == pytest.approx(1.4, abs=0.25)


class TestFig6RampShape:
    def test_bandwidth_ramps_by_one_sender_per_entry(self):
        """The dotted-line structure of Figure 6: each sender's entry
        raises the aggregate by roughly its configured rate until the
        uplink saturates."""
        series = fig6_saturation.run_rate(
            10.0, num_senders=4, stagger_us=40, tail_us=80, bucket_us=20
        )
        # Bandwidth while only sender 0 is active (skip its ramp bucket).
        def window_mean(start_us, end_us):
            lo = int(start_us // series.bucket_us)
            hi = int(end_us // series.bucket_us)
            window = series.series_gbps[lo:hi]
            return sum(window) / len(window)

        one_sender = window_mean(20, 40)
        two_senders = window_mean(60, 80)
        four_senders = window_mean(160, 200)
        assert one_sender == pytest.approx(10.0, abs=2.5)
        assert two_senders == pytest.approx(20.0, abs=4.0)
        assert four_senders == pytest.approx(40.0, abs=6.0)
