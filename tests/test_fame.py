"""FAME-1 model framework (repro.core.fame)."""

import pytest

from repro.core.fame import Fame1Model, Fame5Multiplexer, NullModel
from repro.core.token import Flit, TokenBatch, TokenWindow


class Echo(Fame1Model):
    """Reflects input tokens to output with no delay (test helper)."""

    def _tick(self, window, inputs):
        out = window.new_batch()
        for cycle, flit in inputs[self.ports[0]].iter_flits():
            out.add(cycle, flit)
        return {self.ports[0]: out}


def _window_inputs(model, start, length):
    window = TokenWindow(start, start + length)
    inputs = {p: TokenBatch.empty(start, length) for p in model.ports}
    return window, inputs


class TestFame1Contract:
    def test_null_model_conserves_tokens(self):
        model = NullModel("null", ["a", "b"])
        window, inputs = _window_inputs(model, 0, 8)
        outputs = model.tick(window, inputs)
        assert set(outputs) == {"a", "b"}
        for batch in outputs.values():
            assert batch.length == 8
            assert batch.valid_count == 0

    def test_window_must_resume_where_model_stopped(self):
        model = NullModel("null", ["a"])
        window, inputs = _window_inputs(model, 0, 8)
        model.tick(window, inputs)
        bad_window, bad_inputs = _window_inputs(model, 16, 8)
        with pytest.raises(ValueError):
            model.tick(bad_window, bad_inputs)

    def test_missing_input_port_rejected(self):
        model = NullModel("null", ["a", "b"])
        window = TokenWindow(0, 4)
        with pytest.raises(ValueError, match="missing"):
            model.tick(window, {"a": TokenBatch.empty(0, 4)})

    def test_extra_input_port_rejected(self):
        model = NullModel("null", ["a"])
        window = TokenWindow(0, 4)
        inputs = {
            "a": TokenBatch.empty(0, 4),
            "zz": TokenBatch.empty(0, 4),
        }
        with pytest.raises(ValueError, match="extra"):
            model.tick(window, inputs)

    def test_input_batch_must_cover_window(self):
        model = NullModel("null", ["a"])
        window = TokenWindow(0, 4)
        with pytest.raises(ValueError, match="cover"):
            model.tick(window, {"a": TokenBatch.empty(0, 8)})

    def test_duplicate_ports_rejected(self):
        with pytest.raises(ValueError):
            NullModel("null", ["a", "a"])

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            NullModel("", ["a"])

    def test_current_cycle_advances(self):
        model = NullModel("null", ["a"])
        window, inputs = _window_inputs(model, 0, 8)
        model.tick(window, inputs)
        assert model.current_cycle == 8


class TestFame5Multiplexer:
    def test_ports_are_prefixed_union(self):
        mux = Fame5Multiplexer(
            "mux", [NullModel("m0", ["net"]), NullModel("m1", ["net"])]
        )
        assert mux.ports == ["m0.net", "m1.net"]
        assert mux.multiplexing_factor == 2

    def test_children_see_their_own_tokens(self):
        echo0, echo1 = Echo("e0", ["net"]), Echo("e1", ["net"])
        mux = Fame5Multiplexer("mux", [echo0, echo1])
        window = TokenWindow(0, 8)
        in0 = TokenBatch(0, 8)
        in0.add(3, Flit("for-e0"))
        in1 = TokenBatch.empty(0, 8)
        outputs = mux.tick(window, {"e0.net": in0, "e1.net": in1})
        assert outputs["e0.net"].valid_count == 1
        assert outputs["e1.net"].valid_count == 0

    def test_matches_unmultiplexed_execution(self):
        """FAME-5 is functionally transparent (Section VIII)."""
        solo = Echo("solo", ["net"])
        muxed_child = Echo("solo", ["net"])
        mux = Fame5Multiplexer("mux", [muxed_child])
        window = TokenWindow(0, 16)
        stimulus = TokenBatch(0, 16)
        for cycle in (1, 5, 13):
            stimulus.add(cycle, Flit(cycle))
        solo_out = solo.tick(window, {"net": stimulus})["net"]
        window2 = TokenWindow(0, 16)
        stimulus2 = TokenBatch(0, 16)
        for cycle in (1, 5, 13):
            stimulus2.add(cycle, Flit(cycle))
        mux_out = mux.tick(window2, {"solo.net": stimulus2})["solo.net"]
        assert sorted(solo_out.flits) == sorted(mux_out.flits)

    def test_empty_model_list_rejected(self):
        with pytest.raises(ValueError):
            Fame5Multiplexer("mux", [])

    def test_duplicate_child_names_rejected(self):
        with pytest.raises(ValueError):
            Fame5Multiplexer(
                "mux", [NullModel("same", ["a"]), NullModel("same", ["a"])]
            )
