"""FAME-5 elaboration and the SPECint single-node farm (§VIII)."""

import pytest

from repro.experiments import sec8_singlenode
from repro.manager.runfarm import RunFarmConfig, elaborate
from repro.manager.topology import single_rack
from repro.swmodel.apps.ping import RESULT_KEY, make_ping_client
from repro.swmodel.apps.spec import (
    SPECINT_2017,
    SpecBenchmark,
    benchmark_by_name,
    make_spec_runner,
    reference_cycles,
)
from repro.tile.soc import config_by_name


class TestFame5Elaboration:
    def _run(self, fame5):
        sim = elaborate(
            single_rack(4),
            RunFarmConfig(fame5_blades_per_pipeline=fame5),
        )
        target = sim.blade(1)
        sim.blade(0).spawn(
            "ping", make_ping_client(target.mac, count=4, interval_cycles=80_000)
        )
        sim.run_seconds(0.001)
        return tuple(sim.blade(0).results[RESULT_KEY])

    def test_fame5_is_cycle_identical_to_standard(self):
        """FAME-5 multiplexing is functionally transparent (§VIII)."""
        assert self._run(1) == self._run(4)

    def test_fame5_halves_model_count(self):
        plain = elaborate(single_rack(4))
        muxed = elaborate(
            single_rack(4), RunFarmConfig(fame5_blades_per_pipeline=2)
        )
        # 4 blades + 1 switch vs 2 pipelines + 1 switch.
        assert len(plain.simulation.models) == 5
        assert len(muxed.simulation.models) == 3

    def test_bad_factor_rejected(self):
        with pytest.raises(ValueError):
            RunFarmConfig(fame5_blades_per_pipeline=0)


class TestSpecSuite:
    def test_suite_has_ten_intrate_benchmarks(self):
        assert len(SPECINT_2017) == 10
        assert all(b.name.endswith("_r") for b in SPECINT_2017)

    def test_lookup(self):
        assert benchmark_by_name("505.mcf_r").pattern == "random"
        with pytest.raises(ValueError):
            benchmark_by_name("999.nonesuch")

    def test_mcf_is_most_memory_bound(self):
        """mcf's CPI must dominate (its published character)."""
        soc = config_by_name("QuadCore").build()
        scale = 1e-7
        cpis = {
            b.name: reference_cycles(b, soc, scale) / (b.instructions * scale)
            for b in SPECINT_2017
        }
        assert max(cpis, key=cpis.get) == "505.mcf_r"
        assert cpis["548.exchange2_r"] < 1.5  # compute-bound

    def test_bad_scale_rejected(self):
        soc = config_by_name("QuadCore").build()
        with pytest.raises(ValueError):
            make_spec_runner(SPECINT_2017[0], soc, scale=0)


class TestSec8Experiment:
    def test_quick_farm_produces_rows(self):
        result = sec8_singlenode.run(quick=True)
        assert len(result.rows) == 3
        for row in result.rows:
            assert row.simulated_cycles > 0
            assert row.est_reference_host_hours > 0
        # The paper's "roughly one day": tens of host-hours per benchmark.
        assert 5 < result.suite_host_hours < 120
