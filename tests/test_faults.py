"""Fault injection, retry/backoff, and cycle-exact recovery (repro.faults)."""

import json
import random

import pytest

from repro import ConfigError
from repro.core.channel import TokenStarvationError
from repro.core.fame import Fame1Model
from repro.core.simulation import Simulation
from repro.faults.checkpoint import (
    CheckpointError,
    CheckpointUnsupported,
    ReplayCheckpoint,
    SimulationSnapshot,
    state_digest,
)
from repro.faults.plan import (
    AgfiBuildFault,
    ControllerCrash,
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultSpec,
    InstanceLaunchFault,
)
from repro.faults.retry import CircuitBreaker, RetryPolicy
from repro.faults.watchdog import TokenWatchdog
from repro.manager.manager import FireSimManager, ManagerError
from repro.manager.mapper import map_topology
from repro.manager.topology import single_rack
from repro.manager.workload import WorkloadSpec
from repro.net.ethernet import EthernetFrame, mac_address
from repro.net.switch import SwitchConfig, SwitchModel
from repro.net.transport import HeartbeatMonitor
from repro.swmodel.apps.ping import RESULT_KEY as PING_KEY
from repro.swmodel.apps.ping import make_ping_client


# -- shared target-side fixtures ----------------------------------------


class Sender(Fame1Model):
    """Emits one frame's flits starting at a chosen cycle."""

    def __init__(self, name, frame, at_cycle):
        super().__init__(name, ["net"])
        self.frame = frame
        self.at_cycle = at_cycle
        self.sent = False

    def _tick(self, window, inputs):
        out = window.new_batch()
        if not self.sent and window.start <= self.at_cycle < window.end:
            for index, flit in enumerate(self.frame.to_flits()):
                out.add(self.at_cycle + index, flit)
            self.sent = True
        return {"net": out}


class Recorder(Fame1Model):
    def __init__(self, name):
        super().__init__(name, ["net"])
        self.last_flit_cycles = []

    def _tick(self, window, inputs):
        for cycle, flit in inputs["net"].iter_flits():
            if flit.last:
                self.last_flit_cycles.append(cycle)
        return {"net": window.new_batch()}


def switched_pair(mac_table=None, default_port=1, at_cycle=37, latency=100):
    sim = Simulation()
    frame = EthernetFrame(
        src=mac_address(0), dst=mac_address(1), size_bytes=64
    )
    sender = sim.add_model(Sender("A", frame, at_cycle))
    receiver = sim.add_model(Recorder("B"))
    switch = sim.add_model(
        SwitchModel(
            "tor",
            SwitchConfig(num_ports=2, min_latency_cycles=10),
            mac_table=(
                {mac_address(1): 1} if mac_table is None else mac_table
            ),
            default_port=default_port,
        )
    )
    sim.connect(sender, "net", switch, "port0", latency, name="A-up")
    sim.connect(switch, "port1", receiver, "net", latency, name="B-down")
    return sim, switch, receiver


def ping_workload(running, count=4, duration_s=0.001):
    workload = WorkloadSpec("ping", duration_seconds=duration_s)
    target = running.blade(1)
    workload.add_job(
        0,
        "ping",
        lambda blade: blade.spawn(
            "ping",
            make_ping_client(target.mac, count=count,
                             interval_cycles=200_000),
        ),
    )
    return workload


def run_session(plan=None, interval=None, retry_policy=None, nodes=4):
    """One full manager lifecycle; returns (manager, WorkloadResult)."""
    manager = FireSimManager(
        single_rack(nodes),
        fault_plan=plan,
        retry_policy=retry_policy,
        checkpoint_interval_cycles=interval,
    )
    manager.buildafi()
    manager.launchrunfarm()
    running = manager.infrasetup()
    result = manager.runworkload(ping_workload(running))
    return manager, result


# -- fault plans ---------------------------------------------------------


class TestFaultPlan:
    def test_json_round_trip(self):
        plan = FaultPlan(seed=42, specs=(
            FaultSpec(FaultKind.INSTANCE_LAUNCH, "launchrunfarm",
                      target="f1:0", times=2),
            FaultSpec(FaultKind.CONTROLLER_CRASH, "runworkload",
                      at_cycle=1000, after_model="tor"),
            FaultSpec(FaultKind.TOKEN_STALL, "runworkload",
                      target="A-up", at_cycle=500, probability=0.5),
        ))
        assert FaultPlan.from_dict(json.loads(plan.to_json())) == plan

    def test_file_round_trip(self, tmp_path):
        plan = FaultPlan(seed=3, specs=(
            FaultSpec(FaultKind.AGFI_BUILD, "buildafi"),
        ))
        path = tmp_path / "plan.json"
        path.write_text(plan.to_json())
        assert FaultPlan.from_file(str(path)) == plan

    def test_unreadable_file_is_config_error(self):
        with pytest.raises(ConfigError, match="cannot read fault plan"):
            FaultPlan.from_file("/nonexistent/plan.json")

    def test_bad_json_is_config_error(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text("{not json")
        with pytest.raises(ConfigError, match="not valid JSON"):
            FaultPlan.from_file(str(path))

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError, match="unknown fault kind"):
            FaultPlan.from_dict(
                {"faults": [{"kind": "meteor", "point": "buildafi"}]}
            )

    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigError, match="unknown fault spec keys"):
            FaultPlan.from_dict({"faults": [
                {"kind": "agfi-build", "point": "buildafi", "severty": 9},
            ]})

    def test_unknown_point_rejected(self):
        with pytest.raises(ConfigError, match="unknown injection point"):
            FaultSpec(FaultKind.AGFI_BUILD, "teatime")

    def test_mid_run_kinds_need_at_cycle(self):
        with pytest.raises(ConfigError, match="need at_cycle"):
            FaultSpec(FaultKind.CONTROLLER_CRASH, "runworkload")

    def test_mid_run_kinds_fire_at_runworkload_only(self):
        with pytest.raises(ConfigError, match="fire at runworkload"):
            FaultSpec(FaultKind.CONTROLLER_CRASH, "infrasetup",
                      at_cycle=100)

    def test_token_stall_needs_target(self):
        with pytest.raises(ConfigError, match="target link"):
            FaultSpec(FaultKind.TOKEN_STALL, "runworkload", at_cycle=10)

    def test_probability_bounds(self):
        with pytest.raises(ConfigError, match="probability"):
            FaultSpec(FaultKind.AGFI_BUILD, "buildafi", probability=0.0)
        with pytest.raises(ConfigError, match="probability"):
            FaultSpec(FaultKind.AGFI_BUILD, "buildafi", probability=1.5)


# -- retry policy & circuit breaker -------------------------------------


class TestRetryPolicy:
    def test_schedule_is_deterministic_per_seed(self):
        policy = RetryPolicy(max_retries=5)
        first = policy.schedule(random.Random(9))
        second = policy.schedule(random.Random(9))
        assert first == second
        assert first != policy.schedule(random.Random(10))

    def test_exponential_growth_with_cap(self):
        policy = RetryPolicy(
            max_retries=8, base_delay_s=1.0, multiplier=2.0,
            max_delay_s=5.0, jitter=0.0,
        )
        rng = random.Random(0)
        delays = [policy.delay_for(n, rng) for n in range(1, 6)]
        assert delays == [1.0, 2.0, 4.0, 5.0, 5.0]

    def test_jitter_adds_at_most_the_jitter_fraction(self):
        policy = RetryPolicy(base_delay_s=1.0, jitter=0.25)
        delay = policy.delay_for(1, random.Random(1))
        assert 1.0 <= delay <= 1.25

    def test_validation(self):
        with pytest.raises(ConfigError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ConfigError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ConfigError):
            RetryPolicy(jitter=2.0)


class TestCircuitBreaker:
    def test_trips_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=3)
        assert not breaker.record_failure("f1:0")
        assert not breaker.record_failure("f1:0")
        assert breaker.record_failure("f1:0")  # just tripped
        assert breaker.is_quarantined("f1:0")
        assert not breaker.record_failure("f1:0")  # already open

    def test_success_resets_the_consecutive_count(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure("f1:1")
        breaker.record_success("f1:1")
        assert not breaker.record_failure("f1:1")
        assert not breaker.is_quarantined("f1:1")


# -- the injector --------------------------------------------------------


class TestFaultInjector:
    def test_fire_raises_the_mapped_exception(self):
        plan = FaultPlan(specs=(
            FaultSpec(FaultKind.AGFI_BUILD, "buildafi", target="QuadCore"),
        ))
        injector = FaultInjector(plan)
        with pytest.raises(AgfiBuildFault):
            injector.fire("buildafi", "QuadCore")
        assert injector.exhausted
        injector.fire("buildafi", "QuadCore")  # exhausted: no raise

    def test_target_filtering(self):
        plan = FaultPlan(specs=(
            FaultSpec(FaultKind.INSTANCE_LAUNCH, "launchrunfarm",
                      target="f1:1"),
        ))
        injector = FaultInjector(plan)
        injector.fire("launchrunfarm", "f1:0")  # wrong target: no raise
        with pytest.raises(InstanceLaunchFault):
            injector.fire("launchrunfarm", "f1:1")

    def test_times_counts_down(self):
        plan = FaultPlan(specs=(
            FaultSpec(FaultKind.INSTANCE_LAUNCH, "launchrunfarm", times=2),
        ))
        injector = FaultInjector(plan)
        for _ in range(2):
            with pytest.raises(InstanceLaunchFault):
                injector.fire("launchrunfarm", "f1:0")
        injector.fire("launchrunfarm", "f1:0")
        assert injector.stats.faults_injected == 2

    def test_log_is_byte_identical_across_runs(self):
        plan = FaultPlan(seed=5, specs=(
            FaultSpec(FaultKind.INSTANCE_LAUNCH, "launchrunfarm",
                      times=3, probability=0.8),
        ))
        logs = []
        for _ in range(2):
            injector = FaultInjector(plan)
            for _ in range(10):
                try:
                    injector.fire("launchrunfarm", "f1:0")
                except InstanceLaunchFault:
                    pass
            logs.append(injector.log_text())
        assert logs[0] == logs[1]
        assert logs[0].encode() == logs[1].encode()


# -- checkpoints ---------------------------------------------------------


class TestSimulationSnapshot:
    def test_restore_is_cycle_identical(self):
        sim, _, receiver = switched_pair()
        sim.run_cycles(100)
        snapshot = SimulationSnapshot.capture(sim)
        sim.run_cycles(500)
        uninterrupted = list(receiver.last_flit_cycles)
        assert uninterrupted, "sanity: the frame must have arrived"

        snapshot.restore(sim)
        # Receivers are part of the restored state: find the new one.
        restored_receiver = next(
            m for m in sim.models if m.name == "B"
        )
        assert restored_receiver.last_flit_cycles == []
        sim.run_cycles(500)
        assert restored_receiver.last_flit_cycles == uninterrupted

    def test_snapshot_survives_multiple_restores(self):
        sim, _, _ = switched_pair()
        sim.run_cycles(100)
        snapshot = SimulationSnapshot.capture(sim)
        arrivals = []
        for _ in range(2):
            snapshot.restore(sim)
            sim.run_cycles(500)
            receiver = next(m for m in sim.models if m.name == "B")
            arrivals.append(list(receiver.last_flit_cycles))
        assert arrivals[0] == arrivals[1]

    def test_generator_blades_are_named_in_the_diagnostic(self):
        manager, _ = None, None
        mgr = FireSimManager(single_rack(2))
        mgr.buildafi()
        mgr.launchrunfarm()
        running = mgr.infrasetup()
        workload = ping_workload(running, count=2)
        for job in workload.jobs:
            job.setup(running.blade(job.node_index))
        running.simulation.run_cycles(6400)
        with pytest.raises(CheckpointUnsupported, match="node0"):
            SimulationSnapshot.capture(running.simulation)


class TestReplayCheckpoint:
    def _rebuilder(self):
        """A rebuild closure over ONE topology, as the manager does it.

        Switch names embed globally allocated switch ids, so replay must
        re-elaborate the *same* topology object — a fresh topology would
        be a different target.
        """
        from repro.manager.runfarm import elaborate

        root = single_rack(2)

        def rebuild():
            running = elaborate(root)
            for job in ping_workload(running, count=3).jobs:
                job.setup(running.blade(job.node_index))
            return running

        return rebuild

    def test_restore_replays_to_an_identical_state(self):
        rebuild = self._rebuilder()
        running = rebuild()
        running.simulation.run_cycles(500_000)
        checkpoint = ReplayCheckpoint.capture(running, rebuild)
        restored = checkpoint.restore()
        assert restored is not running
        assert restored.simulation.current_cycle == checkpoint.cycle
        assert state_digest(restored) == state_digest(running)

    def test_digest_mismatch_raises(self):
        rebuild = self._rebuilder()
        running = rebuild()
        running.simulation.run_cycles(100_000)
        checkpoint = ReplayCheckpoint.capture(running, rebuild)
        checkpoint.digest = "0" * 64
        with pytest.raises(CheckpointError, match="diverged"):
            checkpoint.restore()

    def test_digest_tracks_state(self):
        running = self._rebuilder()()
        before = state_digest(running)
        running.simulation.run_cycles(100_000)
        assert state_digest(running) != before


# -- the watchdog & starvation diagnostics ------------------------------


class TestTokenWatchdog:
    def test_healthy_simulation_passes_every_scan(self):
        sim, _, _ = switched_pair()
        watchdog = TokenWatchdog()
        for _ in range(5):
            sim.run_cycles(100)
            watchdog.scan(sim)
        assert watchdog.scans == 5
        assert watchdog.stalls_detected == 0

    def test_lost_batch_is_named_at_the_boundary(self):
        sim, _, _ = switched_pair()
        sim.run_cycles(300)
        lost = sim.links[0].lose_in_flight("a_to_b")
        assert lost > 0
        watchdog = TokenWatchdog()
        with pytest.raises(TokenStarvationError) as excinfo:
            watchdog.scan(sim)
        assert excinfo.value.link_name == "A-up"
        assert "tor.port0" in str(excinfo.value)
        assert watchdog.stalls_detected == 1

    def test_starving_round_names_the_endpoint(self):
        sim, _, _ = switched_pair()
        sim.run_cycles(300)
        sim.links[1].lose_in_flight("a_to_b")  # switch -> receiver
        with pytest.raises(TokenStarvationError) as excinfo:
            sim.run_cycles(200)
        err = excinfo.value
        assert err.model_name == "B"
        assert err.port == "net"
        assert err.link_name == "B-down"


# -- heartbeats ----------------------------------------------------------


class TestHeartbeatMonitor:
    def test_dead_after_consecutive_misses(self):
        monitor = HeartbeatMonitor(misses_to_dead=3)
        assert not monitor.miss("f1:0")
        assert not monitor.miss("f1:0")
        assert monitor.miss("f1:0")
        assert monitor.is_dead("f1:0")

    def test_beat_resets_the_count(self):
        monitor = HeartbeatMonitor(misses_to_dead=2)
        monitor.miss("f1:0")
        monitor.beat("f1:0")
        assert not monitor.miss("f1:0")

    def test_detection_latency_scales_with_interval(self):
        fast = HeartbeatMonitor(interval_s=0.5, misses_to_dead=2)
        slow = HeartbeatMonitor(interval_s=2.0, misses_to_dead=2)
        assert fast.detection_latency_s < slow.detection_latency_s

    def test_validation(self):
        with pytest.raises(ConfigError):
            HeartbeatMonitor(interval_s=0.0)
        with pytest.raises(ConfigError):
            HeartbeatMonitor(misses_to_dead=0)


# -- mapper quarantine ---------------------------------------------------


class TestMapperExclusions:
    def test_excluded_instances_are_skipped(self):
        # 16 blades at 8 per f1.16xlarge (standard FPGA) -> 2 instances.
        root = single_rack(16)
        deployment = map_topology(root, excluded_instances={0})
        assert deployment.f1_instance_ids == [1, 2]
        assert deployment.num_f1_instances == 2
        assert all(
            p.instance_index in (1, 2)
            for p in deployment.server_placements
        )
        assert deployment.f1_hosts() == ["f1:1", "f1:2"]

    def test_default_ids_are_dense(self):
        deployment = map_topology(single_rack(4))
        assert deployment.f1_instance_ids == [0]

    def test_negative_exclusions_rejected(self):
        with pytest.raises(ConfigError):
            map_topology(single_rack(2), excluded_instances={-1})


# -- manager-level resilience -------------------------------------------


class TestManagerRetries:
    def test_transient_faults_are_retried_to_success(self):
        plan = FaultPlan(seed=1, specs=(
            FaultSpec(FaultKind.AGFI_BUILD, "buildafi"),
            FaultSpec(FaultKind.INSTANCE_LAUNCH, "launchrunfarm"),
        ))
        manager, result = run_session(plan)
        clean_manager, clean = run_session()
        assert result.merged(PING_KEY) == clean.merged(PING_KEY)
        assert manager.fault_stats.retries == 2
        assert manager.fault_stats.recoveries == 2
        assert manager.fault_stats.backoff_seconds > 0
        assert clean_manager.fault_stats.faults_injected == 0

    def test_exhausted_budget_raises_manager_error(self):
        plan = FaultPlan(specs=(
            FaultSpec(FaultKind.AGFI_BUILD, "buildafi", times=10),
        ))
        manager = FireSimManager(
            single_rack(2), fault_plan=plan,
            retry_policy=RetryPolicy(max_retries=2),
        )
        with pytest.raises(ManagerError, match="failed after 2 retries"):
            manager.buildafi()
        assert manager.fault_stats.giveups == 1

    def test_repeat_offender_is_quarantined_and_remapped(self):
        plan = FaultPlan(specs=(
            FaultSpec(FaultKind.INSTANCE_LAUNCH, "launchrunfarm",
                      target="f1:0", times=3),
        ))
        manager = FireSimManager(
            single_rack(2), fault_plan=plan,
            retry_policy=RetryPolicy(max_retries=5),
        )
        deployment = manager.launchrunfarm()
        assert manager.breaker.is_quarantined("f1:0")
        assert deployment.f1_instance_ids == [1]
        assert manager.fault_stats.hosts_quarantined == 1


class TestCrashRecovery:
    CRASH_PLAN = FaultPlan(seed=2, specs=(
        FaultSpec(FaultKind.CONTROLLER_CRASH, "runworkload",
                  at_cycle=1_200_000),
    ))

    def test_resumed_run_is_cycle_identical_to_fault_free(self):
        _, clean = run_session()
        manager, crashed = run_session(self.CRASH_PLAN, interval=400_000)
        assert crashed.merged(PING_KEY) == clean.merged(PING_KEY)
        assert crashed.target_seconds == clean.target_seconds
        assert manager.fault_stats.restores == 1
        assert manager.fault_stats.checkpoints_taken >= 2
        assert manager.fault_stats.replay_cycles > 0

    def test_chaos_runs_are_deterministic(self):
        managers = [
            run_session(self.CRASH_PLAN, interval=400_000)[0]
            for _ in range(2)
        ]
        first, second = (m.injector.log_text() for m in managers)
        assert first.encode() == second.encode()
        assert (managers[0].fault_stats.restores
                == managers[1].fault_stats.restores)

    def test_mid_round_crash_after_named_model_recovers(self):
        root = single_rack(2)
        plan = FaultPlan(specs=(
            FaultSpec(FaultKind.CONTROLLER_CRASH, "runworkload",
                      at_cycle=800_000,
                      after_model=f"switch{root.switch_id}"),
        ))
        manager = FireSimManager(
            root, fault_plan=plan, checkpoint_interval_cycles=500_000
        )
        manager.buildafi()
        manager.launchrunfarm()
        running = manager.infrasetup()
        result = manager.runworkload(ping_workload(running))
        _, clean = run_session(nodes=2)
        assert result.merged(PING_KEY) == clean.merged(PING_KEY)
        assert manager.fault_stats.restores == 1

    def test_unrecoverable_crash_exhausts_restores(self):
        plan = FaultPlan(specs=(
            FaultSpec(FaultKind.CONTROLLER_CRASH, "runworkload",
                      at_cycle=500_000, times=10),
        ))
        manager = FireSimManager(
            single_rack(2), fault_plan=plan,
            retry_policy=RetryPolicy(max_retries=2),
            checkpoint_interval_cycles=400_000,
        )
        manager.buildafi()
        manager.launchrunfarm()
        running = manager.infrasetup()
        with pytest.raises(ManagerError, match="after 2 recoveries"):
            manager.runworkload(ping_workload(running))
        assert manager.fault_stats.giveups == 1


class TestTokenStallRecovery:
    def test_stalled_channel_is_diagnosed_and_recovered(self):
        root = single_rack(2)
        link = f"node0.net<->switch{root.switch_id}.port0"
        plan = FaultPlan(specs=(
            FaultSpec(FaultKind.TOKEN_STALL, "runworkload",
                      target=link, at_cycle=900_000),
        ))
        manager = FireSimManager(
            root, fault_plan=plan, checkpoint_interval_cycles=500_000
        )
        manager.buildafi()
        manager.launchrunfarm()
        running = manager.infrasetup()
        result = manager.runworkload(ping_workload(running))
        _, clean = run_session(nodes=2)
        assert result.merged(PING_KEY) == clean.merged(PING_KEY)
        assert manager.fault_stats.stalls_detected == 1
        assert manager.fault_stats.restores == 1
        log = manager.injector.log_text()
        assert "token-stall" in log and "lost" in log

    def test_unknown_stall_target_is_a_config_error(self):
        plan = FaultPlan(specs=(
            FaultSpec(FaultKind.TOKEN_STALL, "runworkload",
                      target="no-such-link", at_cycle=100_000),
        ))
        manager = FireSimManager(single_rack(2), fault_plan=plan)
        manager.buildafi()
        manager.launchrunfarm()
        running = manager.infrasetup()
        with pytest.raises(ConfigError, match="no-such-link"):
            manager.runworkload(ping_workload(running))


# -- switch byte conservation under faults ------------------------------


class TestSwitchByteConservation:
    def assert_conserved(self, switch):
        stats = switch.stats
        assert stats.bytes_in == (
            stats.bytes_out + stats.bytes_dropped + switch.queued_bytes()
        )

    def test_unroutable_unicast_counts_as_dropped(self):
        # No MAC entry and no default port: the frame has nowhere to go.
        sim, switch, receiver = switched_pair(
            mac_table={}, default_port=None
        )
        sim.run_cycles(600)
        assert receiver.last_flit_cycles == []
        assert switch.stats.packets_in == 1
        assert switch.stats.packets_dropped == 1
        assert switch.stats.bytes_dropped == switch.stats.bytes_in
        self.assert_conserved(switch)

    def test_conservation_holds_through_injected_crash(self):
        root = single_rack(2)
        plan = FaultPlan(specs=(
            FaultSpec(FaultKind.CONTROLLER_CRASH, "runworkload",
                      at_cycle=1_000_000),
        ))
        manager = FireSimManager(
            root, fault_plan=plan, checkpoint_interval_cycles=500_000
        )
        manager.buildafi()
        manager.launchrunfarm()
        running = manager.infrasetup()
        manager.runworkload(ping_workload(running))
        for switch in manager.running.switches.values():
            self.assert_conserved(switch)

    def test_routable_traffic_still_flows(self):
        sim, switch, receiver = switched_pair()
        sim.run_cycles(600)
        assert receiver.last_flit_cycles
        assert switch.stats.packets_dropped == 0
        self.assert_conserved(switch)
