"""Purely functional network mode (repro.net.functional, §VII)."""

import pytest

from repro.manager.runfarm import RunFarmConfig, elaborate
from repro.manager.topology import two_tier
from repro.net.functional import FunctionalFabric, elaborate_functional
from repro.swmodel.apps.iperf import (
    RESULT_BYTES,
    make_iperf_client,
    make_iperf_server,
)
from repro.swmodel.apps.ping import RESULT_KEY, make_ping_client


class TestFunctionalFabric:
    def test_ping_works_across_the_fabric(self):
        sim = elaborate_functional(two_tier(num_racks=2, servers_per_rack=2))
        target = sim.blade(3)
        sim.blade(0).spawn(
            "ping", make_ping_client(target.mac, count=4, interval_cycles=80_000)
        )
        sim.run_seconds(0.002)
        assert len(sim.blade(0).results[RESULT_KEY]) == 3

    def test_functional_rtt_below_cycle_exact_rtt(self):
        """Functional mode flattens the fabric: no per-hop
        store-and-forward, so cross-rack RTTs drop."""

        def rtt(elaborator):
            sim = elaborator(
                two_tier(num_racks=2, servers_per_rack=2),
                RunFarmConfig(link_latency_cycles=6400),
            )
            target = sim.blade(3)
            sim.blade(0).spawn(
                "ping",
                make_ping_client(target.mac, count=3, interval_cycles=100_000),
            )
            sim.run_seconds(0.002)
            return sim.blade(0).results[RESULT_KEY][-1]

        assert rtt(elaborate_functional) < rtt(elaborate)

    def test_frames_never_split_across_windows(self):
        sim = elaborate_functional(two_tier(num_racks=1, servers_per_rack=2))
        server = sim.blade(1)
        server.spawn("iperf-s", make_iperf_server())
        sim.blade(0).spawn(
            "iperf-c", make_iperf_client(server.mac, total_bytes=100_000)
        )
        sim.run_seconds(0.003)
        assert server.results[RESULT_BYTES][0] == 100_000

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            FunctionalFabric("f", {1: 0}, delivery_delay_cycles=-1)

    def test_unknown_destination_dropped_silently(self):
        sim = elaborate_functional(two_tier(num_racks=1, servers_per_rack=2))
        sim.blade(0).spawn(
            "ping", make_ping_client(0x02_00_00_00_0F_FF, count=2,
                                     interval_cycles=50_000)
        )
        sim.run_seconds(0.001)  # must not raise; pings simply time out
        assert RESULT_KEY not in sim.blade(0).results
