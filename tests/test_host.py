"""Host platform models (repro.host): instances, FPGAs, cost, perf."""

import pytest

from repro.host.costs import cost_report, simulation_cost
from repro.host.fpga import (
    FPGAConfig,
    STANDARD_FPGA,
    SUPERNODE_FPGA,
)
from repro.host.instances import (
    F1_16XLARGE,
    F1_2XLARGE,
    M4_16XLARGE,
    instance_type,
)
from repro.host.perfmodel import (
    SimulationRateModel,
    SwitchPlacement,
)
from repro.net.transport import TransportSpec, TransportKind, tokens_to_bytes


class TestInstances:
    def test_section_ii_shapes(self):
        assert F1_2XLARGE.vcpus == 8
        assert F1_2XLARGE.dram_gb == 122
        assert F1_2XLARGE.fpgas == 1
        assert F1_16XLARGE.vcpus == 64
        assert F1_16XLARGE.dram_gb == 976
        assert F1_16XLARGE.fpgas == 8
        assert M4_16XLARGE.network_gbps == 25.0
        assert M4_16XLARGE.fpgas == 0

    def test_lookup(self):
        assert instance_type("f1.16xlarge") is F1_16XLARGE
        with pytest.raises(ValueError):
            instance_type("p3.16xlarge")


class TestFPGA:
    def test_section_iii_a5_utilizations(self):
        assert STANDARD_FPGA.total_lut_fraction == pytest.approx(0.326)
        assert STANDARD_FPGA.blade_lut_fraction == pytest.approx(0.144)
        assert SUPERNODE_FPGA.blade_lut_fraction == pytest.approx(0.576)
        assert SUPERNODE_FPGA.total_lut_fraction == pytest.approx(0.758)

    def test_supernode_uses_all_dram_channels(self):
        assert SUPERNODE_FPGA.dram_channels_used == 4
        assert STANDARD_FPGA.dram_channels_used == 1

    def test_one_channel_per_blade_enforced(self):
        with pytest.raises(ValueError):
            FPGAConfig(blades_per_fpga=5)

    def test_fits_check(self):
        SUPERNODE_FPGA.validate_fits()  # 76% fits


class TestCosts:
    def test_paper_1024_node_deployment(self):
        report = cost_report({"f1.16xlarge": 32, "m4.16xlarge": 5})
        assert report.spot_per_hour == pytest.approx(100.0)
        assert report.on_demand_per_hour == pytest.approx(438.40)
        assert report.total_fpgas == 256
        assert report.fpga_retail_value == pytest.approx(12.8e6)

    def test_simulation_cost(self):
        counts = {"f1.2xlarge": 2}
        assert simulation_cost(counts, 10, "on-demand") == pytest.approx(33.0)
        assert simulation_cost(counts, 10, "spot") == pytest.approx(11.0)
        with pytest.raises(ValueError):
            simulation_cost(counts, 1, "reserved")

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            cost_report({"f1.2xlarge": -1})


class TestTransports:
    def test_batch_move_time(self):
        spec = TransportSpec(TransportKind.PCIE, 10e-6, 1e9)
        assert spec.batch_move_time_s(1_000_000) == pytest.approx(10e-6 + 1e-3)

    def test_tokens_to_bytes(self):
        assert tokens_to_bytes(6400) == 6400 * 9
        with pytest.raises(ValueError):
            tokens_to_bytes(-1)


class TestPerfModel:
    def test_1024_node_anchor(self):
        rate = SimulationRateModel().datacenter_rate()
        assert rate.rate_mhz == pytest.approx(3.42, abs=0.1)

    def test_rate_decreases_with_scale(self):
        model = SimulationRateModel()
        rates = [
            model.cluster_rate(n, 6400).rate_hz
            for n in (2, 8, 32, 128, 1024)
        ]
        assert rates == sorted(rates, reverse=True)

    def test_rate_increases_with_link_latency(self):
        model = SimulationRateModel()
        rates = [
            model.cluster_rate(8, latency).rate_hz
            for latency in (320, 1600, 6400, 25600)
        ]
        assert rates == sorted(rates)

    def test_single_node_is_fpga_pcie_bound(self):
        estimate = SimulationRateModel().cluster_rate(1, 6400)
        assert estimate.rate_mhz > 15  # "10s of MHz"

    def test_functional_network_hits_150mhz(self):
        estimate = SimulationRateModel().cluster_rate(
            8, 6400, functional_network=True
        )
        assert estimate.rate_mhz == pytest.approx(150.0)

    def test_supernode_is_slower_but_cheaper_at_scale(self):
        model = SimulationRateModel()
        standard = model.cluster_rate(1024, 6400)
        supernode = model.cluster_rate(1024, 6400, supernode=True)
        assert supernode.rate_hz <= standard.rate_hz

    def test_slowdown_below_1000x_at_full_scale(self):
        rate = SimulationRateModel().datacenter_rate()
        assert rate.slowdown_vs_target(3.2e9) < 1000

    def test_bad_inputs_rejected(self):
        model = SimulationRateModel()
        with pytest.raises(ValueError):
            model.estimate(0, [])
        with pytest.raises(ValueError):
            SwitchPlacement(ports=0)
        with pytest.raises(ValueError):
            SwitchPlacement(ports=2, ports_over_socket=3)
        with pytest.raises(ValueError):
            model.cluster_rate(0)

    def test_stage_breakdown_reported(self):
        estimate = SimulationRateModel().cluster_rate(8, 6400)
        assert "fpga" in estimate.stage_times_s
        assert "pcie" in estimate.stage_times_s
        assert estimate.bottleneck in estimate.stage_times_s
