"""Cross-cutting integration tests: determinism and multi-tenant traffic."""

import pytest

from repro.manager.runfarm import RunFarmConfig, elaborate
from repro.manager.topology import two_tier
from repro.swmodel.apps.iperf import (
    RESULT_BYTES,
    make_iperf_client,
    make_iperf_server,
)
from repro.swmodel.apps.memcached import MemcachedConfig, start_memcached
from repro.swmodel.apps.mutilate import (
    RESULT_LATENCY,
    MutilateConfig,
    start_mutilate,
)
from repro.swmodel.apps.ping import RESULT_KEY as PING_KEY
from repro.swmodel.apps.ping import make_ping_client


def mixed_workload_run():
    """A 2-rack cluster running ping + iperf + memcached concurrently."""
    sim = elaborate(two_tier(num_racks=2, servers_per_rack=4), RunFarmConfig())
    # Ping crosses the root; iperf stays in rack 0; memcached in rack 1.
    sim.blade(0).spawn(
        "ping", make_ping_client(sim.blade(7).mac, count=6, interval_cycles=200_000)
    )
    sim.blade(2).spawn("iperf-s", make_iperf_server())
    sim.blade(1).spawn(
        "iperf-c", make_iperf_client(sim.blade(2).mac, total_bytes=200_000)
    )
    server = sim.blade(4)
    start_memcached(server, MemcachedConfig(num_threads=4))
    start_mutilate(
        sim.blade(5),
        MutilateConfig(
            server_mac=server.mac,
            target_qps=20_000,
            duration_cycles=int(0.004 * 3.2e9),
            server_threads=4,
            seed=11,
        ),
    )
    sim.run_seconds(0.006)
    return sim


class TestMixedTraffic:
    def test_all_workloads_complete_side_by_side(self):
        sim = mixed_workload_run()
        assert len(sim.blade(0).results[PING_KEY]) == 5
        assert sim.blade(2).results[RESULT_BYTES][0] == 200_000
        assert len(sim.blade(5).results[RESULT_LATENCY]) > 10

    def test_ping_latency_unaffected_by_other_racks_traffic(self):
        """iperf in rack 0 and memcached in rack 1 share no links with
        the unloaded measurement path beyond the (underutilized) root."""
        sim = mixed_workload_run()
        rtts = sim.blade(0).results[PING_KEY]
        ideal = 8 * 6400 + 4 * 10
        overheads = [r - ideal for r in rtts]
        # Every ping keeps the unloaded software-stack offset (~34 us);
        # allow scheduler-level jitter only.
        assert max(overheads) - min(overheads) < 32_000  # < 10 us


class TestDeterminism:
    def test_full_cluster_is_bit_reproducible(self):
        first = mixed_workload_run()
        second = mixed_workload_run()
        assert (
            first.blade(0).results[PING_KEY]
            == second.blade(0).results[PING_KEY]
        )
        assert (
            first.blade(5).results[RESULT_LATENCY]
            == second.blade(5).results[RESULT_LATENCY]
        )
        assert (
            first.simulation.stats.valid_tokens_moved
            == second.simulation.stats.valid_tokens_moved
        )

    def test_quantum_does_not_change_results(self):
        """Sub-latency quanta change host cost, never target behaviour."""

        def run(quantum):
            from repro.core.simulation import Simulation
            from repro.net.ethernet import mac_address
            from repro.net.switch import SwitchConfig, SwitchModel
            from repro.swmodel.server import ServerBlade

            sim = Simulation(quantum_override=quantum)
            a = sim.add_model(ServerBlade("node0", node_index=0))
            b = sim.add_model(ServerBlade("node1", node_index=1))
            switch = sim.add_model(
                SwitchModel(
                    "tor",
                    SwitchConfig(num_ports=2),
                    mac_table={mac_address(0): 0, mac_address(1): 1},
                )
            )
            sim.connect(a, "net", switch, "port0", 6400)
            sim.connect(switch, "port1", b, "net", 6400)
            a.spawn(
                "ping", make_ping_client(b.mac, count=4, interval_cycles=60_000)
            )
            sim.run_cycles(2_000_000)
            return a.results[PING_KEY]

        assert run(None) == run(1600) == run(400)

    def test_oversized_quantum_rejected(self):
        from repro.core.simulation import Simulation
        from repro.core.fame import NullModel

        sim = Simulation(quantum_override=8000)
        a = sim.add_model(NullModel("a", ["x"]))
        b = sim.add_model(NullModel("b", ["x"]))
        sim.connect(a, "x", b, "x", 6400)
        with pytest.raises(ValueError, match="exceeds"):
            sim.run_cycles(6400)
