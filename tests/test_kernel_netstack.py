"""Kernel + network stack integration (repro.swmodel.kernel/netstack)."""

import pytest

from repro.core.simulation import Simulation
from repro.net.ethernet import mac_address
from repro.net.switch import SwitchConfig, SwitchModel
from repro.swmodel.netstack import (
    Datagram,
    NetStackCosts,
    PROTO_ICMP,
    PROTO_TCP,
    PROTO_UDP,
)
from repro.swmodel.process import Compute, Recv, Send, Sleep
from repro.swmodel.server import ServerBlade


def two_node_cluster(link_latency=6400, switching=10):
    sim = Simulation()
    a = sim.add_model(ServerBlade("node0", node_index=0))
    b = sim.add_model(ServerBlade("node1", node_index=1))
    switch = sim.add_model(
        SwitchModel(
            "tor",
            SwitchConfig(num_ports=2, min_latency_cycles=switching),
            mac_table={mac_address(0): 0, mac_address(1): 1},
        )
    )
    sim.connect(a, "net", switch, "port0", link_latency)
    sim.connect(switch, "port1", b, "net", link_latency)
    return sim, a, b


class TestEffects:
    def test_compute_and_record(self):
        sim, a, b = two_node_cluster()

        def body(api):
            start = api.now()
            yield Compute(10_000)
            api.record("elapsed", api.now() - start)

        a.spawn("worker", body)
        sim.run_cycles(64_000)
        elapsed = a.results["elapsed"][0]
        assert elapsed >= 10_000
        assert elapsed < 20_000  # scheduling overhead only

    def test_sleep_duration(self):
        sim, a, b = two_node_cluster()

        def body(api):
            start = api.now()
            yield Sleep(50_000)
            api.record("slept", api.now() - start)

        a.spawn("sleeper", body)
        sim.run_cycles(200_000)
        assert a.results["slept"][0] >= 50_000

    def test_unknown_effect_raises(self):
        sim, a, b = two_node_cluster()

        def body(api):
            yield "not-an-effect"

        a.spawn("bad", body)
        with pytest.raises(TypeError, match="unknown effect"):
            sim.run_cycles(64_000)


class TestUdpDelivery:
    def test_send_recv_roundtrip(self):
        sim, a, b = two_node_cluster()

        def receiver(api):
            sock = api.socket(PROTO_UDP, 9000)
            datagram = yield Recv(sock)
            api.record("got", datagram.payload)

        def sender(api):
            yield Send(
                dst_mac=mac_address(1),
                payload="hello",
                payload_bytes=100,
                proto=PROTO_UDP,
                dport=9000,
            )

        b.spawn("rx", receiver)
        a.spawn("tx", sender)
        sim.run_seconds(0.001)
        assert b.results["got"] == ["hello"]

    def test_unbound_port_counts_no_socket(self):
        sim, a, b = two_node_cluster()

        def sender(api):
            yield Send(
                dst_mac=mac_address(1),
                payload="void",
                payload_bytes=64,
                proto=PROTO_UDP,
                dport=4242,
            )

        a.spawn("tx", sender)
        sim.run_seconds(0.001)
        assert b.kernel.netstack.stats.rx_no_socket == 1

    def test_double_bind_rejected(self):
        sim, a, b = two_node_cluster()
        a.kernel.netstack.bind(PROTO_UDP, 7)
        with pytest.raises(ValueError):
            a.kernel.netstack.bind(PROTO_UDP, 7)


class TestIcmp:
    def test_echo_answered_in_kernel_without_userspace(self):
        sim, a, b = two_node_cluster()

        def pinger(api):
            sock = api.socket(PROTO_ICMP, 1)
            t0 = api.now()
            yield Send(
                dst_mac=mac_address(1),
                payload="echo-request",
                payload_bytes=56,
                proto=PROTO_ICMP,
                sport=1,
            )
            yield Recv(sock)
            api.record("rtt", api.now() - t0)

        a.spawn("ping", pinger)
        sim.run_seconds(0.001)
        assert len(a.results["rtt"]) == 1
        # No application thread ran on b, yet the echo was answered.
        assert b.kernel.netstack.stats.icmp_echoes_answered == 1

    def test_rtt_is_ideal_plus_constant_overhead(self):
        """The Figure 5 structure: two latencies, same software offset."""

        def measure(latency):
            sim, a, b = two_node_cluster(link_latency=latency)

            def pinger(api):
                sock = api.socket(PROTO_ICMP, 1)
                for _ in range(3):
                    t0 = api.now()
                    yield Send(
                        dst_mac=mac_address(1),
                        payload="echo-request",
                        payload_bytes=56,
                        proto=PROTO_ICMP,
                        sport=1,
                    )
                    yield Recv(sock)
                    api.record("rtt", api.now() - t0)
                    yield Sleep(100_000)

            a.spawn("ping", pinger)
            sim.run_seconds(0.002)
            rtts = a.results["rtt"]
            ideal = 4 * latency + 2 * 10
            return rtts[-1] - ideal

        overhead_short = measure(1600)
        overhead_long = measure(12800)
        assert overhead_short == overhead_long
        # ~34 us at 3.2 GHz = ~108,800 cycles (within 15%).
        assert 0.85 * 108_800 < overhead_short < 1.15 * 108_800


class TestTcpAcks:
    def test_acks_do_not_storm(self):
        sim, a, b = two_node_cluster()

        def receiver(api):
            sock = api.socket(PROTO_TCP, 5000)
            while True:
                yield Recv(sock)

        def sender(api):
            for _ in range(8):
                yield Send(
                    dst_mac=mac_address(1),
                    payload="data",
                    payload_bytes=1000,
                    proto=PROTO_TCP,
                    dport=5000,
                )

        b.spawn("rx", receiver)
        a.spawn("tx", sender)
        sim.run_seconds(0.002)
        # Delayed ACKs: one per two segments, and ACKs are never ACKed.
        assert b.kernel.netstack.stats.acks_sent == 4
        assert a.kernel.netstack.stats.acks_sent == 0


class TestDriverModel:
    def test_descriptors_replenished_across_bursts(self):
        sim, a, b = two_node_cluster()

        def receiver(api):
            sock = api.socket(PROTO_UDP, 9000)
            while True:
                datagram = yield Recv(sock)
                api.record("seen", datagram.payload)

        def sender(api):
            for index in range(300):  # more than the 128-descriptor ring
                yield Send(
                    dst_mac=mac_address(1),
                    payload=index,
                    payload_bytes=64,
                    proto=PROTO_UDP,
                    dport=9000,
                )

        b.spawn("rx", receiver)
        a.spawn("tx", sender)
        sim.run_seconds(0.012)
        assert len(b.results["seen"]) == 300
        assert b.nic.stats.rx_dropped_frames == 0
