"""Topology-to-instance mapping (repro.manager.mapper, §III-B3)."""

import pytest

from repro.manager.mapper import (
    Deployment,
    HostConfig,
    SUPERNODE_HOST,
    map_topology,
)
from repro.manager.topology import datacenter_tree, single_rack, two_tier
from repro.net.transport import TransportKind


class TestStandardMapping:
    def test_one_blade_per_fpga(self):
        deployment = map_topology(single_rack(8))
        assert deployment.num_f1_instances == 1
        fpgas = {(p.instance_index, p.fpga_index) for p in deployment.server_placements}
        assert len(fpgas) == 8
        assert all(p.slot_index == 0 for p in deployment.server_placements)

    def test_nine_servers_need_two_instances(self):
        deployment = map_topology(single_rack(9))
        assert deployment.num_f1_instances == 2

    def test_tor_colocates_when_rack_fits(self):
        deployment = map_topology(single_rack(8))
        (tor,) = deployment.switch_placements
        assert tor.host.startswith("f1:")
        assert all(
            t == TransportKind.PCIE for t in tor.downlink_transports
        )

    def test_root_switch_on_m4_with_sockets(self):
        deployment = map_topology(two_tier(num_racks=2, servers_per_rack=8))
        root_placement = next(
            p
            for p in deployment.switch_placements
            if p.uplink_transport is None
        )
        assert root_placement.host.startswith("m4:")
        assert all(
            t == TransportKind.SOCKET
            for t in root_placement.downlink_transports
        )
        assert deployment.num_m4_instances == 1


class TestSupernodeMapping:
    def test_four_blades_per_fpga(self):
        deployment = map_topology(single_rack(8), SUPERNODE_HOST)
        assert deployment.num_f1_instances == 1
        slots = {p.slot_index for p in deployment.server_placements}
        assert slots == {0, 1, 2, 3}
        fpgas = {p.fpga_index for p in deployment.server_placements}
        assert fpgas == {0, 1}

    def test_paper_1024_node_mapping(self):
        """Section V-C: 32 f1.16xlarge + 5 m4.16xlarge."""
        deployment = map_topology(datacenter_tree(), SUPERNODE_HOST)
        assert deployment.num_f1_instances == 32
        assert deployment.num_m4_instances == 5
        assert deployment.instance_counts == {
            "f1.16xlarge": 32,
            "m4.16xlarge": 5,
        }

    def test_paper_cost_from_deployment(self):
        deployment = map_topology(datacenter_tree(), SUPERNODE_HOST)
        report = deployment.cost()
        assert report.spot_per_hour == pytest.approx(100.0)
        assert report.total_fpgas == 256

    def test_rate_estimate_matches_anchor(self):
        deployment = map_topology(datacenter_tree(), SUPERNODE_HOST)
        rate = deployment.rate_estimate(6400)
        assert rate.rate_mhz == pytest.approx(3.42, abs=0.15)


class TestHostConfig:
    def test_f1_2xlarge_variant(self):
        config = HostConfig(fpgas_per_instance=1)
        assert config.f1_instance_name == "f1.2xlarge"
        deployment = map_topology(single_rack(4), config)
        assert deployment.num_f1_instances == 4

    def test_invalid_fpga_count_rejected(self):
        with pytest.raises(ValueError):
            HostConfig(fpgas_per_instance=4)

    def test_blades_per_instance(self):
        assert HostConfig().blades_per_instance == 8
        assert SUPERNODE_HOST.blades_per_instance == 32
