"""Memory blade integration (repro.pfa.memblade): the remote-memory
protocol exercised end-to-end over the cycle-exact token network,
validating the analytic latency model's structure."""

import pytest

from repro.core.simulation import Simulation
from repro.pfa.memblade import (
    MemoryBladeClient,
    attach_memory_blade_server,
)
from repro.pfa.remote import AnalyticRemoteMemory, RemoteMemoryParams
from repro.swmodel.server import ServerBlade


def point_to_point(link_latency=6400):
    """Compute node directly linked to the memory blade (hops=0)."""
    sim = Simulation()
    compute = sim.add_model(ServerBlade("compute", node_index=0))
    memblade = sim.add_model(ServerBlade("memblade", node_index=1))
    sim.connect(compute, "net", memblade, "net", link_latency)
    return sim, compute, memblade


class TestMemoryBlade:
    def test_get_page_round_trip(self):
        sim, compute, memblade = point_to_point()
        stats = attach_memory_blade_server(memblade)
        client = MemoryBladeClient(compute, memblade.mac)
        arrivals = []
        client.get_page(0, page=42, on_done=lambda cy, p: arrivals.append((cy, p)))
        sim.run_seconds(0.0005)
        assert arrivals and arrivals[0][1] == 42
        assert stats.gets == 1

    def test_put_page_acknowledged(self):
        sim, compute, memblade = point_to_point()
        stats = attach_memory_blade_server(memblade)
        client = MemoryBladeClient(compute, memblade.mac)
        acks = []
        client.put_page(0, page=7, generation=3, on_done=lambda cy, p: acks.append(p))
        sim.run_seconds(0.0005)
        assert acks == [7]
        assert stats.puts == 1
        assert stats.pages_stored == 1

    def test_measured_fetch_latency_matches_analytic_model(self):
        """The closed-form used by the Figure 11 sweep must agree with the
        token-exact network within NIC-pipeline tolerance."""
        link_latency = 6400
        sim, compute, memblade = point_to_point(link_latency)
        attach_memory_blade_server(memblade, processing_cycles=1500)
        client = MemoryBladeClient(compute, memblade.mac)
        arrivals = []
        issue_cycle = 0
        client.get_page(issue_cycle, 1, lambda cy, p: arrivals.append(cy))
        sim.run_seconds(0.0005)
        measured = arrivals[0] - issue_cycle
        analytic = AnalyticRemoteMemory(
            RemoteMemoryParams(
                link_latency_cycles=link_latency,
                hops=0,
                server_request_cycles=1500,
            )
        ).fetch_latency_cycles()
        # NIC DMA/driver pipelines add latency the closed form folds into
        # its constants; require agreement within 15%.
        assert measured == pytest.approx(analytic, rel=0.15)

    def test_multiple_outstanding_gets(self):
        sim, compute, memblade = point_to_point()
        attach_memory_blade_server(memblade)
        client = MemoryBladeClient(compute, memblade.mac)
        done = []
        for page in range(4):
            client.get_page(0, page, lambda cy, p: done.append(p))
        sim.run_seconds(0.001)
        assert sorted(done) == [0, 1, 2, 3]
