"""NIC model (repro.nic.nic, §III-A2, Figure 3)."""

import pytest

from repro.core.token import TokenBatch, TokenWindow
from repro.net.ethernet import EthernetFrame, mac_address
from repro.nic.nic import NIC, NICConfig
from repro.tile.caches import CacheModel, L1D_CONFIG, L2_CONFIG, MemoryHierarchy
from repro.tile.dram import DRAMModel
from repro.tile.tilelink import TileLinkBus


def fresh_nic(**config_kwargs):
    hierarchy = MemoryHierarchy(
        CacheModel("l1", L1D_CONFIG),
        CacheModel("l2", L2_CONFIG),
        DRAMModel(),
        bus=TileLinkBus(),
    )
    return NIC("nic", hierarchy, NICConfig(**config_kwargs))


def frame(size=64, dst=1):
    return EthernetFrame(src=mac_address(0), dst=mac_address(dst), size_bytes=size)


def drain(nic, start, length):
    window = TokenWindow(start, start + length)
    batch = window.new_batch()
    nic.fill_tx(window, batch)
    return batch


def feed(nic, start, length, frames):
    """Deliver frames' flits to the NIC starting at ``start``."""
    batch = TokenBatch.empty(start, length)
    cycle = start
    for f in frames:
        for flit in f.to_flits():
            batch.add(cycle, flit)
            cycle += 1
    nic.receive_tokens(batch)


class TestSendPath:
    def test_post_send_emits_all_flits(self):
        nic = fresh_nic()
        f = frame(size=128)
        nic.post_send(0, f)
        batch = drain(nic, 0, 50_000)
        assert batch.valid_count == f.flit_count
        assert nic.stats.tx_frames == 1
        assert nic.stats.tx_bytes == 128

    def test_emission_waits_for_dma_and_aligner(self):
        nic = fresh_nic()
        nic.post_send(0, frame())
        batch = drain(nic, 0, 50_000)
        first_cycle = min(batch.flits)
        config = nic.config
        assert first_cycle >= (
            config.controller_latency_cycles + config.aligner_latency_cycles
        )

    def test_sent_cycle_recorded(self):
        nic = fresh_nic()
        f = frame()
        nic.post_send(0, f)
        batch = drain(nic, 0, 50_000)
        assert f.sent_cycle == min(batch.flits)

    def test_packets_emit_in_post_order(self):
        nic = fresh_nic()
        first, second = frame(), frame()
        nic.post_send(0, first)
        nic.post_send(0, second)
        batch = drain(nic, 0, 100_000)
        firsts = [c for c, fl in batch.flits.items() if fl.data is first]
        seconds = [c for c, fl in batch.flits.items() if fl.data is second]
        assert max(firsts) < min(seconds)

    def test_emission_straddles_windows(self):
        nic = fresh_nic()
        f = frame(size=1514)  # 190 flits
        nic.post_send(0, f)
        got = 0
        for start in range(0, 4096, 512):
            got += drain(nic, start, 512).valid_count
        assert got == f.flit_count

    def test_rate_limiter_paces_emission(self):
        nic = fresh_nic()
        nic.set_bandwidth(1, 4)  # quarter rate
        f = frame(size=512)
        nic.post_send(0, f)
        batch = drain(nic, 0, 100_000)
        cycles = sorted(batch.flits)
        assert len(cycles) == f.flit_count
        span = cycles[-1] - cycles[0]
        assert span >= (f.flit_count - 1) * 4 - 4

    def test_tx_backlog_visible(self):
        nic = fresh_nic()
        nic.post_send(0, frame())
        assert nic.tx_backlog == 1


class TestReceivePath:
    def test_complete_packet_dmas_and_completes(self):
        nic = fresh_nic()
        feed(nic, 0, 1000, [frame()])
        assert nic.stats.rx_frames == 1
        assert len(nic.rx_completions) == 1
        done, received = nic.rx_completions[0]
        assert done > 0

    def test_interrupt_fires_after_writes_retire(self):
        nic = fresh_nic()
        interrupts = []
        nic.interrupt_handler = lambda cy, kind, f: interrupts.append(
            (cy, kind)
        )
        feed(nic, 0, 1000, [frame()])
        rx = [i for i in interrupts if i[1] == "rx"]
        assert len(rx) == 1
        assert rx[0][0] >= 8  # after writer latency + DMA

    def test_buffer_full_drops_whole_packets(self):
        nic = fresh_nic(packet_buffer_bytes=256, rx_descriptors=0)
        # No descriptors posted: packets pile into the 256-byte buffer.
        feed(nic, 0, 4000, [frame(size=128), frame(size=128), frame(size=128)])
        assert nic.stats.rx_dropped_frames == 1
        assert nic.stats.rx_dropped_bytes == 128

    def test_descriptor_post_drains_waiting_packets(self):
        nic = fresh_nic(rx_descriptors=0)
        feed(nic, 0, 1000, [frame()])
        assert nic.stats.rx_frames == 0
        nic.post_recv_descriptors(2000, 1)
        assert nic.stats.rx_frames == 1

    def test_negative_descriptor_count_rejected(self):
        with pytest.raises(ValueError):
            fresh_nic().post_recv_descriptors(0, -1)

    def test_occupancy_returns_to_zero(self):
        nic = fresh_nic()
        feed(nic, 0, 1000, [frame()])
        assert nic.rx_buffer_occupancy == 0
