"""Metrics registry (repro.obs.metrics)."""

import json

import pytest

from repro.core.simulation import SimulationStats
from repro.net.switch import SwitchStats
from repro.obs.metrics import (
    METRICS_SCHEMA,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestInstruments:
    def test_counter_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("sim.rounds")
        counter.inc()
        counter.inc(4)
        assert registry.snapshot()["sim.rounds"] == 5

    def test_counter_rejects_decrease(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)

    def test_counter_lookup_is_idempotent(self):
        registry = MetricsRegistry()
        assert registry.counter("a.b") is registry.counter("a.b")

    def test_gauge_set_and_callback(self):
        registry = MetricsRegistry()
        registry.gauge("live.value").set(3.5)
        backing = {"v": 7.0}
        registry.gauge("live.cb", lambda: backing["v"])
        snap = registry.snapshot()
        assert snap["live.value"] == 3.5
        assert snap["live.cb"] == 7.0
        backing["v"] = 9.0
        assert registry.snapshot()["live.cb"] == 9.0

    def test_callback_gauge_rejects_set(self):
        gauge = Gauge("g", lambda: 1.0)
        with pytest.raises(ValueError):
            gauge.set(2.0)

    def test_histogram_summary_and_percentiles(self):
        histogram = Histogram("h")
        for value in [5, 1, 3, 2, 4]:
            histogram.observe(value)
        summary = histogram.summary()
        assert summary["count"] == 5
        assert summary["min"] == 1
        assert summary["max"] == 5
        assert summary["mean"] == 3
        assert histogram.percentile(50) == 3

    def test_empty_histogram_summary_is_zeroes(self):
        assert Histogram("h").summary()["count"] == 0
        assert Histogram("h").percentile(99) == 0.0

    def test_duplicate_name_across_kinds_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x.y")
        with pytest.raises(ValueError):
            registry.gauge("x.y")

    def test_bad_names_rejected(self):
        registry = MetricsRegistry()
        for bad in ("", ".a", "a.", "a..b"):
            with pytest.raises(ValueError):
                registry.counter(bad)


class TestSources:
    def test_dataclass_source_snapshots_fields_and_properties(self):
        registry = MetricsRegistry()
        stats = SimulationStats()
        registry.register_source("sim", stats)
        stats.rounds = 3
        stats.tokens_moved = 10
        stats.valid_tokens_moved = 4
        snap = registry.snapshot()
        assert snap["sim.rounds"] == 3
        assert snap["sim.utilization"] == pytest.approx(0.4)

    def test_switch_stats_source(self):
        registry = MetricsRegistry()
        stats = SwitchStats(packets_dropped=2, bytes_out=640, bytes_in=704)
        registry.register_source("switch.tor", stats)
        snap = registry.snapshot()
        assert snap["switch.tor.packets_dropped"] == 2
        assert snap["switch.tor.bytes_in"] == 704

    def test_reregistration_is_noop(self):
        registry = MetricsRegistry()
        stats = SwitchStats()
        registry.register_source("switch.tor", stats)
        registry.register_source("switch.tor", stats)
        assert len(registry.snapshot()) == len(
            {k for k in registry.snapshot()}
        )

    def test_source_without_numbers_rejected(self):
        class Empty:
            pass

        with pytest.raises(ValueError):
            MetricsRegistry().register_source("x", Empty())


class TestReadsAndExport:
    def test_delta_subtracts_snapshots(self):
        registry = MetricsRegistry()
        counter = registry.counter("sim.rounds")
        counter.inc(5)
        before = registry.snapshot()
        counter.inc(7)
        delta = MetricsRegistry.delta(before, registry.snapshot())
        assert delta["sim.rounds"] == 7

    def test_snapshot_is_sorted(self):
        registry = MetricsRegistry()
        registry.counter("z.last")
        registry.counter("a.first")
        assert list(registry.snapshot()) == ["a.first", "z.last"]

    def test_json_export_schema(self):
        registry = MetricsRegistry()
        registry.counter("sim.rounds").inc(2)
        document = json.loads(registry.to_json(extra={"note": "hi"}))
        assert document["schema"] == METRICS_SCHEMA
        assert document["metrics"]["sim.rounds"] == 2
        assert document["note"] == "hi"

    def test_csv_export(self):
        registry = MetricsRegistry()
        registry.counter("sim.rounds").inc(2)
        lines = registry.to_csv().strip().splitlines()
        assert lines[0] == "name,value"
        assert "sim.rounds,2" in lines
