"""Distributed round-phase profiler (repro.obs.prof).

Unit coverage for the recorder ring, clock sync, and overhead probe,
plus end-to-end checks that a profiled distributed run yields a
well-formed PhaseReport, a merged Chrome trace, and dist.* gauges via
``TelemetrySession.absorb_distributed``.
"""

import json
import time

import numpy as np
import pytest

from repro.dist import plan_partitions, run_distributed
from repro.manager.mapper import HostConfig, map_topology
from repro.manager.runfarm import RunFarmConfig, elaborate
from repro.manager.topology import two_tier
from repro.obs.prof import (
    BUSY_PHASES,
    P_COMPUTE,
    P_RECV_WAIT,
    P_SEND,
    P_SERIALIZE,
    PHASES,
    PROFILE_SCHEMA,
    WORKER_PID_BASE,
    ClockSync,
    PhaseRecorder,
    PhaseReport,
    ProbeRecorder,
    ProfileConfig,
    WorkerProfile,
)
from repro.obs.session import TelemetrySession
from repro.swmodel.apps.ping import make_ping_client

ONE_FPGA = HostConfig(fpgas_per_instance=1)


def run_profiled(profile, cycles=200_000, transport="shm"):
    """A 2-worker distributed run with profiling on."""
    root = two_tier(num_racks=2, servers_per_rack=2)
    running = elaborate(root, RunFarmConfig(link_latency_cycles=640))
    blades = running.blades
    last = max(blades)
    blades[0].spawn(
        "ping",
        make_ping_client(blades[last].mac, count=2, interval_cycles=50_000),
    )
    plan = plan_partitions(running, map_topology(root, ONE_FPGA), 2)
    return run_distributed(
        running.simulation, plan, cycles,
        transport=transport, profile=profile,
    )


# -- PhaseRecorder ------------------------------------------------------


class TestPhaseRecorder:
    def test_marks_attribute_segments_to_phases(self):
        rec = PhaseRecorder(capacity=8)
        rec.round_begin()
        time.sleep(0.002)
        rec.mark(P_COMPUTE)
        rec.mark(P_SEND)
        rec.round_end()
        assert rec.rounds == 1
        assert rec.totals[P_COMPUTE] >= 0.002
        # The send mark landed immediately after compute's.
        assert rec.totals[P_SEND] < rec.totals[P_COMPUTE]

    def test_idle_is_unattributed_remainder(self):
        rec = PhaseRecorder(capacity=8)
        rec.round_begin()
        rec.mark(P_COMPUTE)
        time.sleep(0.002)  # after the last mark: becomes idle
        rec.round_end()
        _, samples = rec.chronological()
        row = samples[0]
        assert row[PHASES.index("idle")] >= 0.002
        # Row sums to the measured round time (idle closes the gap).
        assert row.sum() == pytest.approx(
            rec.totals[P_COMPUTE] + row[PHASES.index("idle")]
        )

    def test_accrued_serialize_deducted_from_send(self):
        rec = PhaseRecorder(capacity=8)
        rec.round_begin()
        time.sleep(0.004)
        rec.accrue(P_SERIALIZE, 0.001)  # staging inside the send segment
        rec.mark(P_SEND)
        rec.round_end()
        assert rec.totals[P_SERIALIZE] == pytest.approx(0.001)
        assert rec.totals[P_SEND] >= 0.002  # net of serialize
        assert rec.totals[P_SEND] < 0.004

    def test_ring_wraparound_keeps_totals_and_order(self):
        rec = PhaseRecorder(capacity=4)
        for _ in range(7):
            rec.round_begin()
            rec.mark(P_COMPUTE)
            rec.round_end()
        assert rec.rounds == 7
        assert rec.wrapped
        assert rec.retained == 4
        starts, samples = rec.chronological()
        assert samples.shape == (4, len(PHASES))
        # Oldest-to-newest after unrolling the ring.
        assert np.all(np.diff(starts) > 0)
        # Totals cover all 7 rounds, not just the retained 4.
        assert rec.totals[P_COMPUTE] > samples[:, P_COMPUTE].sum()

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            PhaseRecorder(capacity=0)


# -- ClockSync ----------------------------------------------------------


class TestClockSync:
    def test_shared_clock_offset_zero(self):
        sync = ClockSync(epoch_s=10.0, entry_s=10.5)
        assert sync.offset_s == 0.0
        assert sync.fork_latency_s == pytest.approx(0.5)
        assert sync.to_parent(11.0) == 11.0

    def test_behind_epoch_reanchors(self):
        sync = ClockSync(epoch_s=10.0, entry_s=9.5)
        assert sync.offset_s == pytest.approx(-0.5)
        assert sync.fork_latency_s == 0.0
        # Worker entry maps exactly onto the parent's epoch.
        assert sync.to_parent(9.5) == pytest.approx(10.0)

    def test_deterministic_given_inputs(self):
        a = ClockSync(epoch_s=3.25, entry_s=3.5)
        b = ClockSync(epoch_s=3.25, entry_s=3.5)
        assert a.to_dict() == b.to_dict()


# -- ProfileConfig ------------------------------------------------------


class TestProfileConfig:
    def test_defaults_valid(self):
        config = ProfileConfig()
        assert config.ring_capacity == 2048
        assert not config.overhead_probe

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"ring_capacity": 0},
            {"trace_rounds": -1},
            {"probe_sleep_s": -0.1, "overhead_probe": True},
            {"probe_sleep_s": 0.001},  # requires overhead_probe=True
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ProfileConfig(**kwargs)


# -- ProbeRecorder ------------------------------------------------------


class TestProbeRecorder:
    def run_rounds(self, rec, n):
        for _ in range(n):
            rec.round_begin()
            rec.mark(P_COMPUTE)
            rec.round_end()

    def test_alternates_recorded_and_minimal_rounds(self):
        rec = ProbeRecorder(capacity=16)
        self.run_rounds(rec, 10)
        # Odd indices record (5 of 10); even indices only stamp.
        assert rec.rounds == 5
        assert len(rec.off_durations) == 5
        assert all(d > 0.0 for d in rec.off_durations)

    def test_off_round_marks_are_noops(self):
        rec = ProbeRecorder(capacity=16)
        rec.round_begin()   # index 1: recorded
        rec.round_end()
        rec.round_begin()   # index 2: minimal
        rec.mark(P_COMPUTE)
        rec.accrue(P_SERIALIZE, 1.0)
        rec.round_end()
        assert rec.totals[P_COMPUTE] == 0.0
        assert rec.totals[P_SERIALIZE] == 0.0

    def test_sleep_injection_inflates_recorded_rounds(self):
        rec = ProbeRecorder(capacity=32, sleep_s=0.002)
        self.run_rounds(rec, 8)
        _, samples = rec.chronological()
        on_median = float(np.median(samples.sum(axis=1)))
        off_median = float(np.median(np.asarray(rec.off_durations)))
        assert on_median / off_median > 1.05


# -- end-to-end: profiled distributed runs ------------------------------


@pytest.fixture(scope="module")
def profiled_result():
    return run_profiled(True)


class TestPhaseReportEndToEnd:
    def test_every_worker_ships_a_profile(self, profiled_result):
        report = PhaseReport.from_result(profiled_result)
        assert len(report.profiles) == 2
        assert [p.worker_id for p in report.profiles] == [0, 1]
        assert all(p.rounds == report.rounds for p in report.profiles)

    def test_phase_shares_sum_to_one(self, profiled_result):
        report = PhaseReport.from_result(profiled_result)
        for profile in report.profiles:
            shares = profile.phase_shares()
            assert set(shares) == set(PHASES)
            assert sum(shares.values()) == pytest.approx(1.0, abs=0.01)

    def test_critical_path_names_worker_and_phase(self, profiled_result):
        critical = PhaseReport.from_result(profiled_result).critical_path()
        assert critical["worker"] in (0, 1)
        assert critical["phase"] in {PHASES[i] for i in BUSY_PHASES}
        assert critical["rounds_observed"] > 0
        assert 0 < critical["rounds_bound"] <= critical["rounds_observed"]

    def test_reconciliation_shares(self, profiled_result):
        recon = PhaseReport.from_result(profiled_result).reconciliation()
        assert 0.0 < recon["compute_share"] < 1.0
        assert 0.0 < recon["transport_share"] < 1.0
        assert recon["measured_rate_mhz"] > 0.0

    def test_to_dict_is_json_round_trippable(self, profiled_result):
        document = PhaseReport.from_result(profiled_result).to_dict()
        assert document["schema"] == PROFILE_SCHEMA
        parsed = json.loads(json.dumps(document))
        assert set(parsed["per_worker"]) == {"0", "1"}

    def test_no_probe_data_outside_probe_mode(self, profiled_result):
        report = PhaseReport.from_result(profiled_result)
        assert report.probe_overhead_ratio() is None


class TestMergedTrace:
    def test_one_pid_per_worker_monotonic_tracks(self, profiled_result):
        report = PhaseReport.from_result(profiled_result)
        pids = set()
        for profile in report.profiles:
            events = profile.trace_events()
            pids.update(e["pid"] for e in events)
            last_end = {}
            for event in events:
                if event["ph"] != "X":
                    continue
                key = (event["pid"], event["tid"])
                # Spans on one track must not regress.
                assert event["ts"] >= last_end.get(key, float("-inf")) - 1e-6
                last_end[key] = event["ts"]
        assert pids == {WORKER_PID_BASE, WORKER_PID_BASE + 1}

    def test_trace_rounds_caps_span_count(self, profiled_result):
        profile = PhaseReport.from_result(profiled_result).profiles[0]
        spans = [
            e for e in profile.trace_events(max_rounds=3)
            if e["ph"] == "X" and e["tid"] == 1
        ]
        assert len(spans) == 3


class TestProbeEndToEnd:
    def test_probe_run_measures_overhead_ratio(self):
        result = run_profiled(ProfileConfig(overhead_probe=True))
        ratio = PhaseReport.from_result(result).probe_overhead_ratio()
        assert ratio is not None
        # Within one run the probe is tight; leave slack for CI hosts.
        assert 0.5 < ratio < 2.0

    def test_injected_sleep_trips_the_ceiling(self):
        """The gate's self-test physics: a slow profiler must show."""
        result = run_profiled(
            ProfileConfig(overhead_probe=True, probe_sleep_s=0.0005)
        )
        ratio = PhaseReport.from_result(result).probe_overhead_ratio()
        assert ratio is not None
        assert ratio > 1.05


class TestAbsorbDistributed:
    def test_profiled_run_populates_session(self, profiled_result, tmp_path):
        session = TelemetrySession(trace=True)
        session.absorb_distributed(profiled_result)

        assert session.phase_report is not None
        critical = session.phase_report.critical_path()
        assert critical["worker"] in (0, 1)

        gauges = session.registry.snapshot()
        assert gauges["dist.num_workers"] == 2.0
        assert gauges["dist.transport_shm"] == 1.0
        assert gauges["dist.transport_fallback"] == 0.0
        assert gauges["dist.worker0.rate_mhz"] > 0.0
        assert gauges["dist.worker1.rate_mhz"] > 0.0
        assert gauges["dist.shm.high_water_bytes"] > 0.0
        for name in (
            "dist.shm.blocked_wakeups",
            "dist.shm.backpressure_stalls",
            "dist.shm.streaming_sends",
            "dist.profile.overhead_ratio",
        ):
            assert gauges[name] >= 0.0

        paths = session.dump(str(tmp_path))
        assert "phase_report.json" in paths
        report = json.loads((tmp_path / "phase_report.json").read_text())
        assert report["schema"] == PROFILE_SCHEMA

        trace = json.loads((tmp_path / "trace.json").read_text())
        trace_pids = {e["pid"] for e in trace["traceEvents"]}
        assert {WORKER_PID_BASE, WORKER_PID_BASE + 1} <= trace_pids

    def test_unprofiled_run_leaves_report_unset(self):
        result = run_profiled(None, cycles=100_000, transport="pipe")
        session = TelemetrySession(trace=False)
        session.absorb_distributed(result)
        assert session.phase_report is None
        gauges = session.registry.snapshot()
        assert gauges["dist.num_workers"] == 2.0


class TestWorkerProfileFromRecorder:
    def test_probe_off_durations_round_trip(self):
        rec = ProbeRecorder(capacity=8)
        for _ in range(6):
            rec.round_begin()
            rec.mark(P_RECV_WAIT)
            rec.round_end()
        profile = WorkerProfile.from_recorder(
            0, rec, ClockSync(epoch_s=0.0, entry_s=0.0)
        )
        assert profile.probe_off_durations is not None
        assert profile.probe_off_durations.shape == (3,)
        document = profile.to_dict()
        assert document["probe_off_rounds"] == 3
        assert document["probe_off_median_s"] > 0.0

    def test_plain_recorder_has_no_probe_field(self):
        rec = PhaseRecorder(capacity=8)
        rec.round_begin()
        rec.round_end()
        profile = WorkerProfile.from_recorder(
            1, rec, ClockSync(epoch_s=0.0, entry_s=0.0)
        )
        assert profile.probe_off_durations is None
        assert "probe_off_rounds" not in profile.to_dict()
