"""Rate monitor and telemetry session (repro.obs.rate / repro.obs.session)."""

import json
import os

import pytest

from repro.host.perfmodel import SimulationRateModel, SwitchPlacement
from repro.manager.runfarm import RunFarmConfig, elaborate
from repro.manager.topology import single_rack
from repro.obs.metrics import MetricsRegistry
from repro.obs.rate import RateMonitor, RateReport
from repro.obs.session import TelemetrySession
from repro.obs.trace import ChromeTraceSink, get_trace_sink, set_trace_sink
from repro.swmodel.apps.ping import make_ping_client


def two_node_sim():
    return elaborate(single_rack(2), RunFarmConfig())


class TestRateMonitor:
    def test_unobserved_simulation_has_no_observer(self):
        sim = two_node_sim()
        assert sim.simulation.observer is None

    def test_attach_and_measure(self):
        sim = two_node_sim()
        monitor = RateMonitor().attach(sim.simulation)
        assert sim.simulation.observer is monitor
        sim.run_cycles(64_000)
        report = monitor.report()
        assert report.rounds == 10  # 6400-cycle quantum
        assert report.cycles == 64_000
        assert report.wall_seconds > 0.0
        assert report.rate_mhz > 0.0
        assert report.freq_hz == 3.2e9

    def test_model_shares_cover_all_models(self):
        sim = two_node_sim()
        monitor = RateMonitor().attach(sim.simulation)
        sim.run_cycles(32_000)
        shares = monitor.report().host_time_shares
        # Switch ids are globally allocated, so match by prefix.
        assert {name.rstrip("0123456789") for name in shares} == {
            "node", "switch",
        }
        assert len(shares) == 3
        assert sum(shares.values()) == pytest.approx(1.0)
        # Shares are sorted most-expensive first.
        assert list(shares.values()) == sorted(shares.values(), reverse=True)

    def test_observed_matches_unobserved_results(self):
        """Observation must not perturb target-time behaviour."""

        def rtts(observed):
            sim = two_node_sim()
            if observed:
                RateMonitor().attach(sim.simulation)
            target = sim.blade(1)
            sim.blade(0).spawn(
                "ping",
                make_ping_client(target.mac, count=3,
                                 interval_cycles=80_000),
            )
            sim.run_seconds(0.001)
            return tuple(sim.blade(0).results["ping_rtt_cycles"])

        assert rtts(True) == rtts(False)

    def test_tick_spans_reach_trace_sink(self):
        sim = two_node_sim()
        sink = ChromeTraceSink()
        RateMonitor(trace=sink).attach(sim.simulation)
        sim.run_cycles(12_800)
        ticks = [e for e in sink.events if e.get("cat") == "sim.tick"]
        names = {e["name"] for e in ticks}
        assert {"node0", "node1"} <= names
        assert any(name.startswith("switch") for name in names)

    def test_register_metrics_exports_live_gauges(self):
        sim = two_node_sim()
        monitor = RateMonitor().attach(sim.simulation)
        registry = MetricsRegistry()
        monitor.register_metrics(registry)
        assert registry.snapshot()["sim.rate_mhz"] == 0.0
        sim.run_cycles(6400)
        assert registry.snapshot()["sim.rate_mhz"] > 0.0

    def test_empty_report_is_safe(self):
        report = RateMonitor().report()
        assert report.rate_mhz == 0.0
        assert report.slowdown_vs_target == float("inf")
        assert report.host_time_shares == {}


class TestPredictionComparison:
    def test_compare_prediction_ratio(self):
        estimate = SimulationRateModel().estimate(6400, [SwitchPlacement(2)])
        report = RateReport(
            wall_seconds=1.0, cycles=int(estimate.rate_hz), rounds=1,
            freq_hz=3.2e9,
        )
        assert report.compare_prediction(estimate) == pytest.approx(1.0)
        assert estimate.prediction_error(estimate.rate_hz) == pytest.approx(
            0.0
        )

    def test_prediction_error_signs(self):
        estimate = SimulationRateModel().estimate(6400, [SwitchPlacement(2)])
        assert estimate.prediction_error(estimate.rate_hz / 2) > 0
        assert estimate.prediction_error(estimate.rate_hz * 2) < 0
        with pytest.raises(ValueError):
            estimate.prediction_error(0.0)


class TestTelemetrySession:
    def test_install_uninstall_cycle(self):
        session = TelemetrySession()
        try:
            session.install()
            assert get_trace_sink() is session.sink
        finally:
            session.uninstall()
        assert get_trace_sink().enabled is False

    def test_untraced_session_has_null_global_sink(self):
        session = TelemetrySession(trace=False)
        try:
            session.install()
            assert get_trace_sink().enabled is False
        finally:
            session.uninstall()

    def test_attach_running_registers_everything(self):
        sim = two_node_sim()
        session = TelemetrySession(trace=False)
        session.attach_running(sim)
        sim.run_cycles(6400)
        snap = session.registry.snapshot()
        assert snap["sim.rounds"] == 1
        assert snap["sim.cycles"] == 6400
        assert snap["sim.rate_mhz"] > 0.0
        assert any(
            name.startswith("switch.") and name.endswith(".packets_dropped")
            for name in snap
        )
        assert "blade.node0.l2.misses" in snap
        assert "blade.node1.nic.tx_bytes" in snap

    def test_span_records_gauge_and_trace(self):
        session = TelemetrySession()
        with session.span("buildafi"):
            pass
        assert session.registry.snapshot()["manager.buildafi.seconds"] >= 0.0
        names = [e["name"] for e in session.sink.events]
        assert "buildafi" in names

    def test_dump_writes_artifacts(self, tmp_path):
        sim = two_node_sim()
        session = TelemetrySession()
        try:
            session.install()
            session.attach_running(sim)
            sim.run_cycles(6400)
            written = session.dump(str(tmp_path / "out"))
        finally:
            session.uninstall()
        assert sorted(written) == [
            "metrics.csv", "metrics.json", "trace.json",
        ]
        for path in written.values():
            assert os.path.exists(path)
        metrics = json.loads(open(written["metrics.json"]).read())
        assert metrics["rate"]["rounds"] == 1
        trace = json.loads(open(written["trace.json"]).read())
        assert any(e["name"] == "node0" for e in trace["traceEvents"])
