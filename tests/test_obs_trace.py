"""Chrome trace-event sink (repro.obs.trace)."""

import json

import pytest

from repro.obs.trace import (
    HOST_PID,
    TARGET_PID,
    ChromeTraceSink,
    NullTraceSink,
    get_trace_sink,
    set_trace_sink,
)


@pytest.fixture
def sink():
    """Install a Chrome sink process-wide; always restore the no-op."""
    installed = set_trace_sink(ChromeTraceSink())
    yield installed
    set_trace_sink(None)


class TestGlobalSink:
    def test_default_is_disabled_noop(self):
        assert isinstance(get_trace_sink(), NullTraceSink)
        assert get_trace_sink().enabled is False

    def test_install_and_restore(self, sink):
        assert get_trace_sink() is sink
        set_trace_sink(None)
        assert get_trace_sink().enabled is False

    def test_noop_sink_accepts_all_calls(self):
        null = NullTraceSink()
        null.target_span("a", "b", 0, 10)
        null.target_instant("a", "b", 5)
        null.host_span("a", "b", 0.0, 1.0)
        null.host_instant("a", "b", 0.5)


class TestChromeFormat:
    def test_target_span_converts_cycles_to_target_us(self):
        sink = ChromeTraceSink(freq_hz=1e6)  # 1 cycle == 1 us
        sink.target_span("pkt", "net", 100, 180)
        event = sink.events[-1]
        assert event["ph"] == "X"
        assert event["ts"] == pytest.approx(100.0)
        assert event["dur"] == pytest.approx(80.0)
        assert event["pid"] == TARGET_PID
        assert event["args"]["start_cycle"] == 100

    def test_host_span_in_microseconds(self):
        sink = ChromeTraceSink()
        sink.host_span("verb", "manager", 1.0, 1.5)
        event = sink.events[-1]
        assert event["ts"] == pytest.approx(1e6)
        assert event["dur"] == pytest.approx(5e5)
        assert event["pid"] == HOST_PID

    def test_instants_carry_cycle_args(self):
        sink = ChromeTraceSink()
        sink.target_instant("drop", "switch", 42, args={"port": 1})
        event = sink.events[-1]
        assert event["ph"] == "i"
        assert event["args"] == {"port": 1, "cycle": 42}

    def test_tracks_get_stable_tids_and_metadata(self):
        sink = ChromeTraceSink()
        sink.target_instant("a", "x", 0, track="switch0")
        sink.target_instant("b", "x", 1, track="switch0")
        sink.target_instant("c", "x", 2, track="switch1")
        named = [e for e in sink.events if e.get("ph") == "M"]
        assert {e["args"]["name"] for e in named} == {"switch0", "switch1"}
        tids = {e["tid"] for e in sink.events
                if e.get("ph") == "i" and e["args"]["cycle"] < 2}
        assert len(tids) == 1

    def test_document_is_valid_chrome_trace(self):
        sink = ChromeTraceSink()
        sink.target_span("pkt", "net", 0, 10)
        sink.host_instant("mark", "manager", 0.1)
        document = json.loads(sink.to_json())
        assert isinstance(document["traceEvents"], list)
        for event in document["traceEvents"]:
            assert {"name", "ph", "pid", "tid"} <= set(event)
        process_names = [
            e for e in document["traceEvents"]
            if e.get("name") == "process_name"
        ]
        assert len(process_names) == 2

    def test_max_events_cap_counts_drops(self):
        sink = ChromeTraceSink(max_events=2)
        for cycle in range(5):
            sink.target_instant("e", "x", cycle)
        assert sink.dropped_events > 0
        assert json.loads(sink.to_json())["otherData"]["dropped_events"] == (
            sink.dropped_events
        )

    def test_bad_config_rejected(self):
        with pytest.raises(ValueError):
            ChromeTraceSink(freq_hz=0)
        with pytest.raises(ValueError):
            ChromeTraceSink(max_events=0)
