"""Batched token engine (repro.perf): bit-equality with the scalar oracle.

The headline guarantee under test mirrors ``tests/test_dist.py``: running
a simulation with ``engine="batched"`` changes *nothing* observable —
cycle counts, simulation stats, switch counters, tracer packet records,
blade results, and per-link flit counts are bit-identical to the scalar
engine, for every topology/quantum combination tried, serially and
distributed.
"""

import io
import json
import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ConfigError
from repro.core.fame import Fame1Model, NullModel
from repro.core.simulation import ENGINES, Simulation
from repro.core.token import Flit, TokenBatch, TokenWindow
from repro.dist import plan_partitions, run_distributed
from repro.manager.cli import main as cli_main
from repro.manager.mapper import HostConfig, map_topology
from repro.manager.runfarm import RunFarmConfig, elaborate
from repro.net.ethernet import mac_address
from repro.net.switch import SwitchConfig, SwitchModel
from repro.net.tracer import splice_tracer
from repro.obs.rate import RateMonitor
from repro.perf import TOKEN_DTYPE, TokenStream
from repro.swmodel.apps.ping import RESULT_KEY, make_ping_client
from repro.swmodel.server import ServerBlade
from tests.test_dist import (
    TARGET_CYCLES,
    TOPOLOGIES,
    fingerprint,
    serial_fingerprint,
)

ONE_FPGA = HostConfig(fpgas_per_instance=1)


def build_batched(topo_key, quantum_override=None):
    """The exact workload of ``tests.test_dist.build``, batched engine."""
    root = TOPOLOGIES[topo_key]()
    running = elaborate(
        root, RunFarmConfig(link_latency_cycles=640, engine="batched")
    )
    if quantum_override is not None:
        running.simulation.quantum_override = quantum_override
    blades = running.blades
    last = max(blades)
    blades[0].spawn(
        "ping",
        make_ping_client(blades[last].mac, count=4, interval_cycles=50_000),
    )
    return running, root


class TestEquivalence:
    @pytest.mark.parametrize("quantum_override", [None, 160])
    @pytest.mark.parametrize("topo_key", sorted(TOPOLOGIES))
    def test_bit_identical_to_scalar(self, topo_key, quantum_override):
        running, _ = build_batched(topo_key, quantum_override)
        running.simulation.run_until(TARGET_CYCLES)
        expected = serial_fingerprint(topo_key, quantum_override)
        assert fingerprint(running) == expected
        # The workload actually crossed switches (otherwise the equality
        # above would be vacuous).
        assert expected["blades"][0][RESULT_KEY]

    @pytest.mark.parametrize("workers", [2])
    @pytest.mark.parametrize("topo_key", sorted(TOPOLOGIES))
    def test_batched_distributed_matches_serial_scalar(
        self, topo_key, workers
    ):
        """Both axes at once: sparse batches ship across worker pipes in
        the producer's representation and still land bit-identically."""
        running, root = build_batched(topo_key)
        deployment = map_topology(root, ONE_FPGA)
        plan = plan_partitions(running, deployment, workers)
        assert len(plan.boundaries(running.simulation)) > 0
        run_distributed(running.simulation, plan, TARGET_CYCLES)
        assert fingerprint(running) == serial_fingerprint(topo_key, None)

    def test_tracer_records_match_scalar(self):
        """Spliced tracers record identical packets under both engines."""

        def run(engine):
            sim = Simulation(engine=engine)
            a = sim.add_model(ServerBlade("node0", node_index=0))
            b = sim.add_model(ServerBlade("node1", node_index=1))
            switch = sim.add_model(
                SwitchModel(
                    "tor",
                    SwitchConfig(num_ports=2),
                    mac_table={mac_address(0): 0, mac_address(1): 1},
                )
            )
            tracer_a = splice_tracer(
                sim, a, "net", switch, "port0", 640, "trace-a"
            )
            tracer_b = splice_tracer(
                sim, switch, "port1", b, "net", 640, "trace-b"
            )
            a.spawn(
                "ping",
                make_ping_client(b.mac, count=3, interval_cycles=50_000),
            )
            sim.run_until(400_000)

            def strip(records):
                return [
                    (r.src, r.dst, r.size_bytes, r.direction,
                     r.first_flit_cycle, r.last_flit_cycle)
                    for r in records
                ]

            return (
                strip(tracer_a.records),
                strip(tracer_b.records),
                tuple(a.results[RESULT_KEY]),
            )

        scalar = run("scalar")
        assert scalar[0], "scalar run recorded no packets"
        assert run("batched") == scalar

    def test_cli_engine_flag_is_cycle_exact(self):
        def session(engine):
            out = io.StringIO()
            code = cli_main(
                [
                    "buildafi", "launchrunfarm", "infrasetup",
                    "runworkload",
                    "--topology", "single_rack", "--servers-per-rack", "2",
                    "--duration-ms", "1", "--ping-count", "2",
                    "--engine", engine, "--json",
                ],
                out=out,
            )
            assert code == 0
            return json.loads(out.getvalue())["verbs"]

        scalar, batched = session("scalar"), session("batched")
        assert batched["infrasetup"]["engine"] == "batched"
        assert batched["runworkload"]["ping"] == scalar["runworkload"]["ping"]


class TestEngineSelection:
    def test_unknown_engine_rejected_by_simulation(self):
        with pytest.raises(ValueError, match="unknown engine"):
            Simulation(engine="turbo")

    def test_unknown_engine_rejected_by_config(self):
        with pytest.raises(ConfigError, match="unknown engine"):
            RunFarmConfig(engine="turbo")

    def test_engine_registry_names_both_paths(self):
        assert ENGINES == ("scalar", "batched")


class TestTokenStream:
    def test_from_flits_shifts_once(self):
        stream = TokenStream.from_flits(
            0, 64, {3: Flit(data="x"), 9: Flit(data="y")}, shift=10
        )
        assert stream.start_cycle == 10
        assert stream.end_cycle == 74
        assert stream.valid_count == 2
        assert sorted(stream.flits) == [13, 19]

    def test_to_batch_keys_are_python_ints(self):
        """np.int64 leaking into flit dicts would corrupt repr digests."""
        stream = TokenStream.from_flits(0, 8, {2: Flit(data="x")})
        batch = stream.to_batch()
        assert isinstance(batch, TokenBatch)
        assert all(type(cycle) is int for cycle in batch.flits)
        assert all(type(cycle) is int for cycle in stream.flits)
        assert all(type(cycle) is int for cycle, _ in stream.iter_flits())

    def test_shift_in_place_updates_flit_view(self):
        stream = TokenStream.from_flits(0, 32, {5: Flit(data="x")})
        assert stream.shift(100) is stream
        assert stream.start_cycle == 100
        assert sorted(stream.flits) == [105]

    def test_pickle_roundtrip_preserves_window(self):
        """Streams ship over worker pipes as-is (no convert/deconvert)."""
        stream = TokenStream.from_flits(
            640, 160, {700: Flit(data="p", last=True)}
        )
        clone = pickle.loads(pickle.dumps(stream))
        assert clone.start_cycle == stream.start_cycle
        assert clone.length == stream.length
        assert clone.tokens.dtype == TOKEN_DTYPE
        assert sorted(clone.flits) == [700]
        assert clone.flits[700].data == "p"

    def test_duck_types_token_batch_window(self):
        stream = TokenStream.from_flits(10, 20, {})
        assert len(stream) == 20
        assert stream.valid_count == 0
        assert stream.flits == {}
        assert stream.contains_cycle(10)
        assert not stream.contains_cycle(30)


class TestRouteMemo:
    MACS = {mac_address(0): 0, mac_address(1): 1}

    def make_switch(self, cls=SwitchModel):
        return cls("tor", SwitchConfig(num_ports=2), mac_table=dict(self.MACS))

    def test_memo_enabled_only_for_base_route(self):
        class CustomRoute(SwitchModel):
            def route(self, frame, ingress_port):
                return super().route(frame, ingress_port)

        assert self.make_switch()._memoize_routes
        assert not self.make_switch(CustomRoute)._memoize_routes

    def test_item_mutation_bumps_table_version(self):
        switch = self.make_switch()
        before = switch._mac_table.version
        switch.mac_table[mac_address(2)] = 1
        assert switch._mac_table.version == before + 1
        del switch.mac_table[mac_address(2)]
        assert switch._mac_table.version == before + 2

    def test_table_replacement_invalidates_cache(self):
        switch = self.make_switch()
        switch._route_cache[(1, 2, 0)] = (1,)
        switch.mac_table = {mac_address(5): 1}
        assert switch._route_cache == {}
        assert switch._route_version == switch._mac_table.version

    def test_default_port_change_invalidates_cache(self):
        switch = self.make_switch()
        switch._route_cache[(1, 2, 0)] = (1,)
        switch.default_port = 1
        assert switch._route_cache == {}

    def test_idle_safe_disabled_for_tick_overrides(self):
        class CountingSwitch(SwitchModel):
            def _tick(self, window, inputs):
                return super()._tick(window, inputs)

        assert self.make_switch()._idle_safe
        assert not self.make_switch(CountingSwitch)._idle_safe
        assert self.make_switch(CountingSwitch).idle_outputs(None) is None


class TestRateMonitorBulkAbsorb:
    def test_absorb_tick_totals_accumulates(self):
        monitor = RateMonitor()
        monitor.absorb_tick_totals(["a", "b"], np.array([0.5, 0.25]))
        monitor.absorb_tick_totals(["a"], np.array([0.5]))
        assert monitor.model_host_seconds == {"a": 1.0, "b": 0.25}
        assert all(
            type(v) is float for v in monitor.model_host_seconds.values()
        )

    def test_absorb_round_times_matches_per_round_recording(self):
        bulk, serial = RateMonitor(), RateMonitor()
        walls = [0.25, 0.125, 0.5]
        bulk.absorb_round_times(6400, np.array(walls))
        for wall in walls:
            serial.record_round(6400, wall)
        assert bulk.report() == serial.report()

    def test_absorb_round_times_empty_is_noop(self):
        monitor = RateMonitor()
        monitor.absorb_round_times(6400, np.empty(0))
        report = monitor.report()
        assert report.rounds == 0
        assert report.wall_seconds == 0.0

    def test_batched_run_reports_same_rounds_as_scalar(self):
        def run(engine):
            root = TOPOLOGIES["single_rack_4"]()
            running = elaborate(
                root, RunFarmConfig(link_latency_cycles=640, engine=engine)
            )
            monitor = RateMonitor().attach(running.simulation)
            running.simulation.run_until(64_000)
            return monitor.report()

        scalar, batched = run("scalar"), run("batched")
        assert batched.rounds == scalar.rounds
        assert batched.cycles == scalar.cycles
        assert batched.wall_seconds > 0
        # Switch ids come from a global counter, so compare model counts,
        # not names: every model was timed under both engines.
        assert len(batched.model_host_seconds) == len(
            scalar.model_host_seconds
        )
        assert all(v >= 0 for v in batched.model_host_seconds.values())


class ScriptedSource(Fame1Model):
    """Emits one single-flit packet at each scheduled cycle; never idle-
    elidable (no ``idle_outputs`` override), like a real traffic source."""

    def __init__(self, name, schedule):
        super().__init__(name, ["out"])
        self.schedule = sorted(schedule)

    def _tick(self, window, inputs):
        batch = window.new_batch()
        for cycle in self.schedule:
            if window.start <= cycle < window.end:
                batch.flits[cycle] = Flit(data=("pkt", cycle), last=True)
        return {"out": batch}


class RecordingSink(Fame1Model):
    def __init__(self, name):
        super().__init__(name, ["in"])
        self.received = []

    def _tick(self, window, inputs):
        for cycle in sorted(inputs["in"].flits):
            self.received.append((cycle, inputs["in"].flits[cycle].data))
        return {"in": window.new_batch()}


class TestIdleElisionProperty:
    @given(
        schedule=st.sets(
            st.integers(min_value=0, max_value=20_000), max_size=12
        ),
        quantum=st.sampled_from([None, 64, 160, 320]),
    )
    @settings(max_examples=15, deadline=None)
    def test_elision_never_changes_flit_counts(self, schedule, quantum):
        """A source -> tracer -> sink chain where the tracer's windows
        are mostly idle: elision must neither drop nor invent flits,
        and delivery cycles must match the scalar engine exactly."""

        def run(engine):
            sim = Simulation(quantum_override=quantum, engine=engine)
            source = sim.add_model(ScriptedSource("src", schedule))
            sink = sim.add_model(RecordingSink("dst"))
            tracer = splice_tracer(
                sim, source, "out", sink, "in", 640, "wire"
            )
            sim.run_until(22_000 + 2 * 640)
            counts = tuple(
                (link.flits_a_to_b, link.flits_b_to_a)
                for link in sim.links
            )
            return list(sink.received), counts, len(tracer.records)

        scalar = run("scalar")
        batched = run("batched")
        assert batched == scalar
        received, counts, _ = batched
        assert len(received) == len(schedule)
        assert sorted(data[1] for _, data in received) == sorted(schedule)
        # Every hop moved exactly one flit per scheduled packet.
        assert all(a2b == len(schedule) for a2b, _ in counts)

    def test_null_model_idle_override_guard(self):
        """A NullModel subclass with a custom _tick must not be elided."""

        class Counting(NullModel):
            ticks = 0

            def _tick(self, window, inputs):
                type(self).ticks += 1
                return super()._tick(window, inputs)

        window = TokenWindow(0, 64)
        outputs = NullModel("n", ["p"]).idle_outputs(window)
        assert outputs is not None
        assert outputs["p"].valid_count == 0
        assert Counting("n", ["p"]).idle_outputs(window) is None
