"""Page-Fault Accelerator subsystem (repro.pfa, §VI)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.pfa.pfa import FaultCosts, PageFaultAccelerator, SoftwarePaging
from repro.pfa.remote import AnalyticRemoteMemory, PAGE_BYTES, RemoteMemoryParams
from repro.pfa.runtime import PagedExecutor, pages_for_bytes, run_trace_all_local
from repro.pfa.workloads import (
    PEAK_MEMORY_BYTES,
    WorkloadConfig,
    genome_trace,
    local_memory_sweep,
    qsort_trace,
)


class TestRemoteMemory:
    def test_fetch_latency_structure(self):
        params = RemoteMemoryParams()
        remote = AnalyticRemoteMemory(params)
        latency = remote.fetch_latency_cycles()
        # request out + server + page back, each at least a link latency.
        assert latency > 2 * params.link_latency_cycles
        assert latency > params.page_transfer_cycles

    def test_hops_add_latency(self):
        direct = AnalyticRemoteMemory(RemoteMemoryParams(hops=0))
        via_tor = AnalyticRemoteMemory(RemoteMemoryParams(hops=1))
        assert (
            via_tor.fetch_latency_cycles() > direct.fetch_latency_cycles()
        )

    def test_page_transfer_is_512_flits(self):
        assert RemoteMemoryParams().page_transfer_cycles == PAGE_BYTES // 8

    def test_counters(self):
        remote = AnalyticRemoteMemory()
        remote.fetch(0, 1)
        remote.evict(0, 2)
        assert remote.pages_fetched == 1
        assert remote.pages_evicted == 1


class TestBackends:
    def test_pfa_fault_faster_than_software(self):
        remote_sw, remote_hw = AnalyticRemoteMemory(), AnalyticRemoteMemory()
        sw = SoftwarePaging(remote_sw)
        pfa = PageFaultAccelerator(remote_hw)
        sw_resume = sw.fault(0, 1)
        pfa_resume = pfa.fault(0, 1)
        assert pfa_resume < sw_resume

    def test_newq_drains_at_batch_size(self):
        pfa = PageFaultAccelerator(AnalyticRemoteMemory(), free_frames=1000)
        batch = pfa.costs.pfa_newq_batch_size
        cycle = 0
        for page in range(batch - 1):
            cycle = pfa.fault(cycle, page)
        assert pfa.stats.newq_batches == 0
        pfa.fault(cycle, batch)
        assert pfa.stats.newq_batches == 1
        assert len(pfa.new_queue) == 0

    def test_empty_freeq_forces_synchronous_refill(self):
        pfa = PageFaultAccelerator(AnalyticRemoteMemory(), free_frames=2)
        cycle = 0
        for page in range(3):
            cycle = pfa.fault(cycle, page)
        # The third fault found freeQ empty and drained newQ synchronously.
        assert pfa.stats.newq_batches >= 1

    def test_flush_drains_residue(self):
        pfa = PageFaultAccelerator(AnalyticRemoteMemory())
        pfa.fault(0, 1)
        assert len(pfa.new_queue) == 1
        pfa.flush(10**6)
        assert len(pfa.new_queue) == 0

    def test_metadata_per_page_ratio_near_paper(self):
        costs = FaultCosts()
        sw_per_page = costs.sw_metadata_cycles
        pfa_per_page = costs.pfa_metadata_per_page_cycles
        assert 2.0 < sw_per_page / pfa_per_page < 3.5


class TestExecutor:
    def test_all_resident_never_faults(self):
        trace = [(page, 100) for page in range(4)] * 10
        executor = PagedExecutor(SoftwarePaging(AnalyticRemoteMemory()), 4)
        result = executor.run(iter(trace))
        assert result.faults == 4  # cold faults only
        assert result.evictions == 0

    def test_thrash_faults_every_access(self):
        trace = [(page, 100) for page in range(8)] * 3
        executor = PagedExecutor(SoftwarePaging(AnalyticRemoteMemory()), 2)
        result = executor.run(iter(trace))
        assert result.faults == 24  # cyclic sweep through 8 pages, LRU of 2

    def test_evictions_identical_across_backends(self):
        config = WorkloadConfig(
            footprint_bytes=1 << 20, steps=2000, compute_per_step_cycles=500
        )
        sw = PagedExecutor(SoftwarePaging(AnalyticRemoteMemory()), 32).run(
            genome_trace(config)
        )
        pfa = PagedExecutor(
            PageFaultAccelerator(AnalyticRemoteMemory()), 32
        ).run(genome_trace(config))
        assert sw.faults == pfa.faults
        assert sw.evictions == pfa.evictions

    def test_overhead_definition(self):
        trace = [(0, 1000), (1, 1000)]
        result = PagedExecutor(
            SoftwarePaging(AnalyticRemoteMemory()), 4
        ).run(iter(trace))
        assert result.overhead_cycles == result.total_cycles - 2000

    def test_zero_resident_pages_rejected(self):
        with pytest.raises(ValueError):
            PagedExecutor(SoftwarePaging(AnalyticRemoteMemory()), 0)

    @settings(max_examples=15)
    @given(
        local=st.integers(min_value=1, max_value=64),
        steps=st.integers(min_value=1, max_value=500),
    )
    def test_faults_bounded_by_accesses(self, local, steps):
        config = WorkloadConfig(
            footprint_bytes=64 * PAGE_BYTES,
            steps=steps,
            compute_per_step_cycles=10,
        )
        result = PagedExecutor(
            SoftwarePaging(AnalyticRemoteMemory()), local
        ).run(genome_trace(config))
        assert result.faults <= steps
        assert result.total_cycles >= result.compute_cycles


class TestWorkloads:
    def test_genome_is_deterministic(self):
        config = WorkloadConfig(steps=500)
        assert list(genome_trace(config)) == list(genome_trace(config))

    def test_genome_covers_footprint(self):
        config = WorkloadConfig(steps=5000, footprint_bytes=64 * PAGE_BYTES)
        pages = {page for page, _ in genome_trace(config)}
        assert len(pages) > 32  # random probes touch most of 64 pages

    def test_qsort_touch_count_is_pages_times_depth(self):
        config = WorkloadConfig(footprint_bytes=16 * PAGE_BYTES)
        touches = sum(1 for _ in qsort_trace(config))
        # 16 pages, spans 16,8,4,2,1 -> 5 full sweeps.
        assert touches == 16 * 5

    def test_qsort_locality_beats_genome(self):
        genome_config = WorkloadConfig(
            footprint_bytes=256 * PAGE_BYTES, steps=1280
        )
        qsort_config = WorkloadConfig(footprint_bytes=256 * PAGE_BYTES)
        local = 64  # quarter of the footprint
        genome_run = PagedExecutor(
            SoftwarePaging(AnalyticRemoteMemory()), local
        ).run(genome_trace(genome_config))
        qsort_run = PagedExecutor(
            SoftwarePaging(AnalyticRemoteMemory()), local
        ).run(qsort_trace(qsort_config))
        genome_fault_rate = genome_run.faults / 1280
        qsort_fault_rate = qsort_run.faults / (256 * 9)
        assert qsort_fault_rate < genome_fault_rate

    def test_peak_memory_matches_paper(self):
        assert PEAK_MEMORY_BYTES == 64 * 1024 * 1024
        assert pages_for_bytes(PEAK_MEMORY_BYTES) == 16384

    def test_sweep_fractions_validated(self):
        with pytest.raises(ValueError):
            local_memory_sweep((0.0,))
        points = local_memory_sweep((0.5,), 64 * PAGE_BYTES)
        assert points == [(0.5, 32)]
