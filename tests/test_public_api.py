"""Public API surface (repro.__init__)."""

import pytest

import repro


class TestPublicAPI:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.{name} missing"

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_quickstart_flow_from_docstring(self):
        """The module docstring's quickstart must actually work."""
        manager = repro.FireSimManager(
            repro.two_tier(num_racks=2, servers_per_rack=2)
        )
        manager.buildafi()
        manager.launchrunfarm()
        sim = manager.infrasetup()
        assert sim.num_nodes == 4
        manager.terminaterunfarm()

    def test_default_clock_is_paper_clock(self):
        assert repro.DEFAULT_CLOCK.freq_hz == 3.2e9

    def test_named_configs_exported(self):
        assert "QuadCore" in repro.NAMED_CONFIGS
        assert repro.config_by_name("QuadCore").num_cores == 4

    def test_cost_report_exported(self):
        report = repro.cost_report({"f1.16xlarge": 32, "m4.16xlarge": 5})
        assert report.spot_per_hour == pytest.approx(100.0)
