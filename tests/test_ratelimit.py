"""NIC token-bucket rate limiter (repro.nic.ratelimit, §III-A2)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.nic.ratelimit import TokenBucketLimiter, rate_settings_for_bandwidth


class TestRateSettings:
    def test_paper_bandwidth_points_are_exact(self):
        link = 204.8e9
        assert rate_settings_for_bandwidth(100e9, link) == (125, 256)
        assert rate_settings_for_bandwidth(40e9, link) == (25, 128)
        assert rate_settings_for_bandwidth(10e9, link) == (25, 512)
        assert rate_settings_for_bandwidth(1e9, link) == (5, 1024)

    def test_full_rate(self):
        assert rate_settings_for_bandwidth(204.8e9, 204.8e9) == (1, 1)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            rate_settings_for_bandwidth(0, 204.8e9)
        with pytest.raises(ValueError):
            rate_settings_for_bandwidth(300e9, 204.8e9)


class TestTokenBucket:
    def test_unlimited_rate_admits_every_cycle(self):
        limiter = TokenBucketLimiter(1, 1)
        for cycle in range(10):
            assert limiter.next_send_cycle(cycle) == cycle
            limiter.consume(cycle)

    def test_half_rate_spacing(self):
        limiter = TokenBucketLimiter(1, 2)
        sends = []
        cycle = 0
        for _ in range(8):
            cycle = limiter.next_send_cycle(cycle)
            limiter.consume(cycle)
            sends.append(cycle)
            cycle += 1
        # One credit every 2 cycles: 8 sends span ~16 cycles.
        assert sends[-1] - sends[0] >= 13

    def test_consume_without_credit_raises(self):
        limiter = TokenBucketLimiter(1, 4)
        limiter.consume(limiter.next_send_cycle(0))
        with pytest.raises(RuntimeError):
            limiter.consume(1)  # no credit until next period tick

    def test_invalid_settings_rejected(self):
        with pytest.raises(ValueError):
            TokenBucketLimiter(0, 1)
        with pytest.raises(ValueError):
            TokenBucketLimiter(3, 2)  # k > p exceeds link rate

    def test_runtime_reconfiguration(self):
        limiter = TokenBucketLimiter(1, 1)
        limiter.set_rate(1, 4)
        assert limiter.rate_fraction == 0.25

    def test_cap_bounds_idle_accrual(self):
        limiter = TokenBucketLimiter(2, 8)
        # Long idle: credits must not exceed the cap (k).
        limiter.next_send_cycle(10_000)
        assert limiter.available <= limiter.cap

    @settings(max_examples=20)
    @given(
        k=st.integers(min_value=1, max_value=16),
        p_mult=st.integers(min_value=1, max_value=32),
    )
    def test_effective_rate_is_k_over_p(self, k, p_mult):
        """Back-to-back sending achieves k/p of the link rate (§III-A2)."""
        p = k * p_mult
        limiter = TokenBucketLimiter(k, p)
        horizon = 64 * p
        sends = 0
        cycle = limiter.next_send_cycle(0)
        while cycle < horizon:
            limiter.consume(cycle)
            sends += 1
            cycle = limiter.next_send_cycle(cycle + 1)
        expected = horizon * k / p
        assert sends == pytest.approx(expected, rel=0.1)
