"""Rocket core timing model (repro.tile.rocket)."""

import pytest

from repro.tile.caches import CacheModel, L1D_CONFIG, L2_CONFIG, MemoryHierarchy
from repro.tile.dram import DRAMModel
from repro.tile.rocket import ComputeBlock, RocketCore


def fresh_core(seed=0, cpi=1.0):
    hierarchy = MemoryHierarchy(
        CacheModel("l1", L1D_CONFIG),
        CacheModel("l2", L2_CONFIG),
        DRAMModel(),
    )
    return RocketCore(0, hierarchy, cpi_base=cpi, seed=seed)


class TestComputeBlock:
    def test_more_mem_refs_than_instructions_rejected(self):
        with pytest.raises(ValueError):
            ComputeBlock(instructions=10, mem_refs=11)

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            ComputeBlock(instructions=-1)

    def test_unknown_pattern_rejected(self):
        with pytest.raises(ValueError):
            ComputeBlock(instructions=10, pattern="zigzag")

    def test_bad_write_fraction_rejected(self):
        with pytest.raises(ValueError):
            ComputeBlock(instructions=10, write_fraction=1.5)


class TestRocketCore:
    def test_pure_compute_costs_cpi_per_instruction(self):
        core = fresh_core()
        assert core.execute_block(0, ComputeBlock(instructions=1000)) == 1000

    def test_cpi_floor_enforced(self):
        with pytest.raises(ValueError):
            fresh_core(cpi=0.5)

    def test_higher_cpi_scales_compute(self):
        core = fresh_core(cpi=1.5)
        assert core.execute_block(0, ComputeBlock(instructions=1000)) == 1500

    def test_memory_refs_add_latency(self):
        plain = fresh_core().execute_block(0, ComputeBlock(instructions=1000))
        with_mem = fresh_core().execute_block(
            0,
            ComputeBlock(
                instructions=1000, mem_refs=100, footprint_bytes=1 << 20,
                pattern="random",
            ),
        )
        assert with_mem > plain

    def test_sequential_beats_random_on_big_footprints(self):
        footprint = 8 << 20  # far beyond L2
        seq = fresh_core().execute_block(
            0,
            ComputeBlock(
                instructions=4000, mem_refs=400, footprint_bytes=footprint,
                pattern="seq", write_fraction=0.0,
            ),
        )
        rand = fresh_core().execute_block(
            0,
            ComputeBlock(
                instructions=4000, mem_refs=400, footprint_bytes=footprint,
                pattern="random", write_fraction=0.0,
            ),
        )
        # Sequential streaming enjoys row-buffer/cache-line locality.
        assert seq <= rand

    def test_deterministic_given_seed(self):
        block = ComputeBlock(
            instructions=2000, mem_refs=300, footprint_bytes=1 << 20,
            pattern="random",
        )
        assert fresh_core(seed=7).execute_block(0, block) == fresh_core(
            seed=7
        ).execute_block(0, block)

    def test_sampling_scales_large_blocks(self):
        big = ComputeBlock(
            instructions=10**6,
            mem_refs=10**5,
            footprint_bytes=1 << 20,
            pattern="random",
        )
        core = fresh_core()
        cycles = core.execute_block(0, big)
        # Memory time must scale to the full ref count despite sampling.
        assert cycles > 10**6
        assert core.stats.mem_ref_cycles > 0

    def test_stats_track_ipc(self):
        core = fresh_core()
        core.execute_block(0, ComputeBlock(instructions=1000))
        assert core.stats.ipc == pytest.approx(1.0)

    def test_cycles_for_instructions(self):
        assert fresh_core(cpi=1.25).cycles_for_instructions(100) == 125
