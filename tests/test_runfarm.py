"""Run farm elaboration (repro.manager.runfarm)."""

import pytest

from repro.manager.runfarm import RunFarmConfig, elaborate
from repro.manager.topology import single_rack, two_tier
from repro.net.ethernet import mac_address
from repro.swmodel.apps.ping import RESULT_KEY, make_ping_client


class TestElaboration:
    def test_nodes_get_sequential_macs_and_ips(self):
        sim = elaborate(single_rack(4))
        for index in range(4):
            assert sim.blade(index).mac == mac_address(index)
        servers = list(sim.root.iter_servers())
        assert servers[0].ip == "10.0.0.0"
        assert servers[3].ip == "10.0.0.3"

    def test_switch_mac_tables_route_to_correct_subtree(self):
        root = two_tier(num_racks=2, servers_per_rack=2)
        sim = elaborate(root)
        root_switch = sim.switches[root.switch_id]
        # Rack 0 holds nodes 0-1 on port 0; rack 1 holds nodes 2-3 on port 1.
        assert root_switch.mac_table[mac_address(0)] == 0
        assert root_switch.mac_table[mac_address(1)] == 0
        assert root_switch.mac_table[mac_address(2)] == 1
        assert root_switch.mac_table[mac_address(3)] == 1
        assert root_switch.default_port is None

    def test_tor_default_port_is_uplink(self):
        root = two_tier(num_racks=2, servers_per_rack=2)
        sim = elaborate(root)
        tor = root.downlinks[0]
        tor_model = sim.switches[tor.switch_id]
        assert tor_model.default_port == len(tor.downlinks)

    def test_unknown_node_lookup_raises(self):
        sim = elaborate(single_rack(2))
        with pytest.raises(LookupError):
            sim.blade(99)
        with pytest.raises(LookupError):
            sim.switch(12345)

    def test_bad_config_rejected(self):
        with pytest.raises(ValueError):
            RunFarmConfig(link_latency_cycles=0)

    def test_num_nodes(self):
        assert elaborate(single_rack(5)).num_nodes == 5


class TestCrossRackTraffic:
    def test_ping_crosses_two_switch_tiers(self):
        root = two_tier(num_racks=2, servers_per_rack=2)
        sim = elaborate(root, RunFarmConfig(link_latency_cycles=1600))
        target = sim.blade(3)  # other rack
        sim.blade(0).spawn(
            "ping", make_ping_client(target.mac, count=4, interval_cycles=50_000)
        )
        sim.run_seconds(0.001)
        rtts = sim.blade(0).results[RESULT_KEY]
        assert len(rtts) == 3
        # Cross-rack: 8 link crossings + 4 switch latencies + SW overhead.
        ideal = 8 * 1600 + 4 * 10
        overhead = rtts[0] - ideal
        assert 90_000 < overhead < 130_000  # ~34 us at 3.2 GHz

    def test_same_rack_does_not_cross_root(self):
        root = two_tier(num_racks=2, servers_per_rack=2)
        sim = elaborate(root, RunFarmConfig(link_latency_cycles=1600))
        target = sim.blade(1)  # same rack
        sim.blade(0).spawn(
            "ping", make_ping_client(target.mac, count=4, interval_cycles=50_000)
        )
        sim.run_seconds(0.001)
        root_model = sim.switches[root.switch_id]
        assert root_model.stats.packets_in == 0
