"""CPU scheduler model (repro.swmodel.sched)."""

import pytest

from repro.core.events import EventQueue
from repro.swmodel.process import Thread, ThreadState
from repro.swmodel.sched import Scheduler, SchedulerConfig


def empty_gen():
    return iter(())


def work_thread(name, cycles, pinned=None):
    thread = Thread(name, empty_gen(), pinned_core=pinned)
    thread.work_remaining = cycles
    return thread


def make_sched(num_cores=4, **config_kwargs):
    events = EventQueue()
    config = SchedulerConfig(**config_kwargs)
    sched = Scheduler(num_cores, events, config)
    return sched, events


class TestBasics:
    def test_single_thread_runs_to_completion(self):
        sched, events = make_sched(1)
        thread = work_thread("t", 10_000)
        sched.add_thread(0, thread)
        events.run_until(1_000_000)
        assert thread.state == ThreadState.DONE
        assert thread.cpu_cycles >= 10_000

    def test_pinned_thread_stays_on_its_core(self):
        sched, events = make_sched(4)
        thread = work_thread("t", 50_000, pinned=2)
        sched.add_thread(0, thread)
        events.run_until(1_000_000)
        assert thread.last_core == 2

    def test_invalid_pin_rejected(self):
        sched, _ = make_sched(2)
        with pytest.raises(ValueError):
            sched.add_thread(0, work_thread("t", 10, pinned=5))

    def test_threads_spread_across_cores(self):
        sched, events = make_sched(4)
        threads = [work_thread(f"t{i}", 200_000) for i in range(4)]
        for t in threads:
            sched.add_thread(0, t)
        events.run_until(10_000_000)
        assert all(t.state == ThreadState.DONE for t in threads)
        # With 4 CPU-bound threads and 4 cores, total time is bounded by
        # roughly one thread's length (they ran in parallel).
        assert max(t.cpu_cycles for t in threads) == 200_000


class TestTimeslicing:
    def test_overcommit_shares_one_core(self):
        sched, events = make_sched(1, timeslice_cycles=10_000)
        first = work_thread("a", 30_000)
        second = work_thread("b", 30_000)
        sched.add_thread(0, first)
        sched.add_thread(0, second)
        events.run_until(10_000_000)
        assert first.state == ThreadState.DONE
        assert second.state == ThreadState.DONE
        # Both must have been preempted at least once.
        assert first.context_switches > 1 or second.context_switches > 1


class TestSoftirq:
    def test_softirq_runs_and_completes(self):
        sched, events = make_sched(2)
        done = []
        sched.submit_softirq(0, 5_000, lambda cy: done.append(cy))
        events.run_until(100_000)
        assert len(done) == 1
        assert done[0] >= 5_000

    def test_softirq_spreads_round_robin(self):
        sched, events = make_sched(4)
        for _ in range(8):
            sched.submit_softirq(0, 100, lambda cy: None)
        # Round-robin steering: every core got two items queued.
        events.run_until(100_000)
        assert sched._rss_counter == 8

    def test_softirq_preempts_running_thread(self):
        sched, events = make_sched(1, preempt_quantum_cycles=1_000)
        hog = work_thread("hog", 1_000_000)
        sched.add_thread(0, hog)
        events.run_until(10_000)  # let the hog start
        fired = []
        sched.submit_softirq(10_000, 500, lambda cy: fired.append(cy))
        events.run_until(50_000)
        assert fired, "softirq never ran under a CPU hog"
        # Bounded by the preemption quantum plus its own cost and slack.
        assert fired[0] - 10_000 <= 3 * 1_000 + 500

    def test_negative_cost_rejected(self):
        sched, _ = make_sched(1)
        with pytest.raises(ValueError):
            sched.submit_softirq(0, -1, lambda cy: None)


class TestBalancing:
    def test_idle_steal_requires_cache_cold_thread(self):
        sched, events = make_sched(2, migration_cost_cycles=1_000_000)
        # Two threads stacked on core 0's queue; core 1 idle but the
        # threads are cache-hot, so no steal happens immediately.
        hog = work_thread("hog", 5_000_000)
        waiter = work_thread("waiter", 1_000)
        hog.last_core = 0
        waiter.pinned_core = None
        sched.add_thread(0, hog)
        waiter.last_core = 0
        sched.wake(0, waiter)
        events.run_until(10_000)
        assert waiter.state != ThreadState.DONE

    def test_periodic_balance_moves_queued_thread(self):
        sched, events = make_sched(
            2, balance_interval_cycles=50_000, migration_cost_cycles=10**9
        )
        sched.start_periodic_balance()
        hog = work_thread("hog", 10_000_000)
        waiter = work_thread("waiter", 1_000)
        sched.add_thread(0, hog)
        waiter.last_core = hog.last_core
        sched.wake(0, waiter)
        events.run_until(200_000)
        # The balancer must have moved the waiter to the idle core and
        # completed it long before the hog finishes.
        assert waiter.state == ThreadState.DONE

    def test_pinned_threads_never_migrate(self):
        sched, events = make_sched(2, balance_interval_cycles=20_000)
        sched.start_periodic_balance()
        hog = work_thread("hog", 2_000_000, pinned=0)
        pinned_waiter = work_thread("waiter", 1_000, pinned=0)
        sched.add_thread(0, hog)
        sched.add_thread(0, pinned_waiter)
        events.run_until(300_000)
        assert pinned_waiter.last_core == 0


class TestDeterminism:
    def test_same_workload_same_schedule(self):
        def run_once():
            sched, events = make_sched(2, timeslice_cycles=5_000)
            threads = [work_thread(f"t{i}", 20_000 + i * 1000) for i in range(5)]
            for t in threads:
                sched.add_thread(0, t)
            events.run_until(10_000_000)
            return [(t.cpu_cycles, t.context_switches, t.last_core) for t in threads]

        assert run_once() == run_once()
