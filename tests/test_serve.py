"""repro.serve: the job server's multi-tenancy contract.

The headline properties:

* jobs sharing the farm are **bit-identical** to the same specs run
  standalone through the serial oracle (:func:`run_job_inline`) —
  multi-tenancy must not perturb target time;
* a preempted job resumes **cycle-identically** from its portable
  checkpoint (the digest proves it);
* the scheduler **never oversubscribes** FPGA slots and **never
  starves** a queued job (hypothesis property over randomized job
  mixes);
* cancel/shutdown reap every child and leak no /dev/shm segments;
* the CLI verbs round-trip through the unix-socket endpoint.
"""

from __future__ import annotations

import os
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.checkpoint import CheckpointError
from repro.manager.manager import FireSimManager, ManagerError
from repro.serve import (
    FarmError,
    InProcessClient,
    JobError,
    JobRecord,
    JobServer,
    JobSpec,
    JobState,
    Scheduler,
    ServeError,
    ServeFarm,
    SocketEndpoint,
    run_job_inline,
)
from repro.manager import cli


PING = {
    "name": "ping-job",
    "topology": "single_rack",
    "servers_per_rack": 2,
    "workload": "ping",
    "duration_ms": 0.5,
    "ping_count": 4,
}

#: Long enough (~0.5 s host) that a preempt order lands mid-run.
SLOW = {**PING, "name": "slow", "duration_ms": 40.0, "ping_count": 20}


@pytest.fixture
def server():
    instance = JobServer(farm=ServeFarm({"f1.2xlarge": 2})).start()
    yield instance
    try:
        InProcessClient(instance).shutdown()
    except ServeError:
        pass
    instance.stop()


# -- job specs -----------------------------------------------------------


def test_jobspec_roundtrips_through_json():
    spec = JobSpec.from_dict({**PING, "priority": 3, "supernode": True})
    assert JobSpec.from_dict(spec.to_dict()) == spec


def test_jobspec_rejects_unknown_fields_and_bad_values():
    with pytest.raises(JobError, match="unknown JobSpec fields"):
        JobSpec.from_dict({**PING, "bogus": 1})
    with pytest.raises(JobError, match="duration"):
        JobSpec.from_dict({**PING, "duration_ms": 0})
    with pytest.raises(JobError, match="name"):
        JobSpec.from_dict({"topology": "single_rack"})


def test_fpga_slots_account_for_supernode_packing():
    flat = JobSpec.from_dict({**PING, "servers_per_rack": 8})
    packed = JobSpec.from_dict(
        {**PING, "servers_per_rack": 8, "supernode": True}
    )
    assert flat.fpga_slots() == 8
    assert packed.fpga_slots() == 2  # four blades per FPGA


# -- the farm ledger -----------------------------------------------------


def test_farm_never_oversubscribes():
    farm = ServeFarm({"f1.2xlarge": 2})
    assert farm.capacity == 2
    farm.allocate(1, 2)
    with pytest.raises(FarmError, match="oversubscribe"):
        farm.allocate(2, 1)
    assert farm.release(1) == 2
    farm.allocate(2, 1)
    assert farm.free == 1


def test_farm_prices_preemptible_jobs_at_spot():
    farm = ServeFarm({"f1.16xlarge": 2})
    spot = farm.job_cost(8, hours=1.0, preemptible=True)
    fixed = farm.job_cost(8, hours=1.0, preemptible=False)
    assert spot["pricing"] == "spot"
    assert fixed["pricing"] == "on-demand"
    assert spot["hourly_rate"] < fixed["hourly_rate"]
    assert spot["savings_vs_on_demand"] > 0.0
    assert fixed["savings_vs_on_demand"] == 0.0


# -- the segmented-run seam ----------------------------------------------


def _setup_manager(spec: JobSpec) -> FireSimManager:
    manager = spec.build_manager()
    manager.buildafi()
    manager.launchrunfarm()
    manager.infrasetup()
    return manager


def test_segmented_preempt_resume_is_cycle_exact():
    spec = JobSpec.from_dict(PING)
    oracle = run_job_inline(spec)

    manager = _setup_manager(spec)
    boundaries = []

    def control(cycle, total):
        boundaries.append(cycle)
        return "preempt" if len(boundaries) == 3 else "continue"

    outcome = manager.runworkload_segmented(
        spec.build_workload(manager),
        segment_cycles=spec.segment_cycles(),
        control=control,
    )
    assert outcome.status == "preempted"
    assert 0 < outcome.cycle < spec.segment_cycles() * 8

    resumed = _setup_manager(spec)
    final = resumed.runworkload_segmented(
        spec.build_workload(resumed),
        segment_cycles=spec.segment_cycles(),
        resume_cycle=outcome.cycle,
        resume_digest=outcome.digest,
    )
    assert final.status == "done"
    assert final.digest == oracle["final_digest"]


def test_segmented_resume_rejects_wrong_digest():
    spec = JobSpec.from_dict(PING)
    manager = _setup_manager(spec)
    quantum = manager.run_config.link_latency_cycles
    with pytest.raises(CheckpointError, match="diverged"):
        manager.runworkload_segmented(
            spec.build_workload(manager),
            resume_cycle=quantum * 10,
            resume_digest="0" * 64,
        )


def test_segmented_rejects_unknown_verdict_and_distributed_engine():
    spec = JobSpec.from_dict(PING)
    manager = _setup_manager(spec)
    with pytest.raises(ManagerError, match="unknown control verdict"):
        manager.runworkload_segmented(
            spec.build_workload(manager), control=lambda c, t: "pause"
        )
    dist = JobSpec.from_dict({**PING, "workers": 2})
    dist_manager = _setup_manager(dist)
    with pytest.raises(ManagerError, match="serial engine"):
        dist_manager.runworkload_segmented(dist.build_workload(dist_manager))


# -- multi-tenant bit-equality -------------------------------------------


def test_concurrent_jobs_bit_identical_to_serial_oracle():
    """Two jobs on a 2-slot farm, each bit-equal to a standalone run."""
    spec_a = {**PING, "name": "tenant-a"}
    spec_b = {**PING, "name": "tenant-b", "ping_count": 6}
    oracle_a = run_job_inline(JobSpec.from_dict(spec_a))
    oracle_b = run_job_inline(JobSpec.from_dict(spec_b))

    # Four slots: both two-slot jobs hold FPGAs at the same time.
    server = JobServer(farm=ServeFarm({"f1.2xlarge": 4})).start()
    client = InProcessClient(server)
    try:
        id_a = client.submit(spec_a)
        id_b = client.submit(spec_b)
        rec_a = client.wait(id_a, timeout_s=120)
        rec_b = client.wait(id_b, timeout_s=120)
        assert rec_a["state"] == "done" and rec_b["state"] == "done"
        assert rec_a["result"]["node_results"] == oracle_a["node_results"]
        assert rec_b["result"]["node_results"] == oracle_b["node_results"]
        assert rec_a["result"]["final_digest"] == oracle_a["final_digest"]
        assert rec_b["result"]["final_digest"] == oracle_b["final_digest"]
        leak_report = client.shutdown()
        assert leak_report["leaked_segments"] == []
    finally:
        server.stop()


def test_preempted_job_resumes_cycle_identically(server):
    """A higher-priority arrival evicts the runner; the victim's final
    state is bit-equal to a run that was never disturbed."""
    oracle_slow = run_job_inline(JobSpec.from_dict(SLOW))
    high = {**PING, "name": "urgent", "duration_ms": 2.0, "priority": 10}
    oracle_high = run_job_inline(JobSpec.from_dict(high))

    client = InProcessClient(server)
    slow_id = client.submit(SLOW)
    deadline = time.monotonic() + 30.0
    while not any(
        e["event"] == "started" for e in server.events
    ):
        assert time.monotonic() < deadline
        time.sleep(0.02)
    time.sleep(0.2)  # let the victim make mid-run progress
    high_id = client.submit(high)

    rec_high = client.wait(high_id, timeout_s=120)
    rec_slow = client.wait(slow_id, timeout_s=120)
    assert rec_high["state"] == "done"
    assert rec_slow["state"] == "done"
    assert rec_slow["preemptions"] >= 1
    assert rec_high["result"]["node_results"] == oracle_high["node_results"]
    assert rec_slow["result"]["node_results"] == oracle_slow["node_results"]
    assert rec_slow["result"]["final_digest"] == oracle_slow["final_digest"]
    events = [e["event"] for e in server.events]
    assert "preempted" in events and events.count("started") >= 3


def test_non_preemptible_job_is_never_evicted(server):
    client = InProcessClient(server)
    fixed = {**SLOW, "name": "fixed", "preemptible": False,
             "duration_ms": 10.0}
    high = {**PING, "name": "urgent", "priority": 10}
    fixed_id = client.submit(fixed)
    client.submit(high)
    rec_fixed = client.wait(fixed_id, timeout_s=120)
    assert rec_fixed["state"] == "done"
    assert rec_fixed["preemptions"] == 0


# -- scheduler properties ------------------------------------------------


def _job_strategy(capacity: int):
    return st.builds(
        dict,
        slots=st.integers(min_value=1, max_value=capacity),
        priority=st.integers(min_value=-3, max_value=3),
        preemptible=st.booleans(),
        work=st.integers(min_value=1, max_value=4),
    )


@settings(max_examples=60)
@given(data=st.data())
def test_scheduler_never_oversubscribes_nor_starves(data):
    """Randomized job mixes: slots stay within capacity; all jobs finish.

    Models the server loop with instant preemption confirmation and one
    unit of work per running job per round — preserved across
    preemption, exactly like a replay checkpoint preserves cycles.
    """
    capacity = data.draw(st.integers(min_value=1, max_value=6))
    job_dicts = data.draw(
        st.lists(_job_strategy(capacity), min_size=1, max_size=10)
    )
    farm = ServeFarm({"f1.2xlarge": capacity})
    scheduler = Scheduler()
    records = {}
    remaining = {}
    for index, job in enumerate(job_dicts, start=1):
        spec = JobSpec.from_dict({
            "name": f"j{index}",
            "servers_per_rack": job["slots"],
            "priority": job["priority"],
            "preemptible": job["preemptible"],
        })
        records[index] = JobRecord(
            job_id=index, spec=spec, submit_seq=index
        )
        remaining[index] = job["work"]

    total_work = sum(remaining.values())
    max_rounds = 20 * total_work + 50 * len(records) + 20
    rounds = 0
    while any(r.state != JobState.DONE for r in records.values()):
        rounds += 1
        assert rounds <= max_rounds, (
            f"starvation: {[r.to_dict() for r in records.values() if r.state != JobState.DONE]}"
        )
        scheduler.age(records)
        for action in scheduler.plan(records, farm):
            record = records[action.job_id]
            if action.kind == "preempt":
                assert record.spec.preemptible, \
                    "scheduler evicted a non-preemptible job"
                farm.release(record.job_id)
                record.state = JobState.QUEUED
                record.preemptions += 1
            elif record.state == JobState.QUEUED:
                # allocate() raises FarmError on oversubscription — the
                # invariant under test.
                farm.allocate(record.job_id, record.spec.fpga_slots())
                record.state = JobState.RUNNING
        assert farm.used <= farm.capacity
        for record in records.values():
            if record.state == JobState.RUNNING:
                remaining[record.job_id] -= 1
                if remaining[record.job_id] <= 0:
                    farm.release(record.job_id)
                    record.state = JobState.DONE


def test_submit_rejects_jobs_larger_than_the_farm(server):
    client = InProcessClient(server)
    with pytest.raises(ServeError, match="never be scheduled"):
        client.submit({**PING, "servers_per_rack": 16})


# -- cancel and shutdown -------------------------------------------------


def test_cancel_queued_and_running_jobs(server):
    client = InProcessClient(server)
    running_id = client.submit(SLOW)
    queued_id = client.submit({**SLOW, "name": "waiter"})
    # The second job can't fit (2-slot farm, 2-slot jobs): cancel it
    # straight out of the queue, then cancel the runner mid-flight.
    outcome = client.cancel(queued_id)
    assert outcome["state"] == "cancelled"
    deadline = time.monotonic() + 30.0
    while server.records[running_id].state != JobState.RUNNING:
        assert time.monotonic() < deadline
        time.sleep(0.02)
    client.cancel(running_id)
    record = client.wait(running_id, timeout_s=60)
    assert record["state"] == "cancelled"
    assert server.farm.used == 0
    with pytest.raises(ServeError, match="nothing to cancel"):
        client.cancel(running_id)


def test_shutdown_checkpoints_running_jobs_and_audits_shm(server):
    client = InProcessClient(server)
    job_id = client.submit(SLOW)
    deadline = time.monotonic() + 30.0
    while server.records[job_id].state != JobState.RUNNING:
        assert time.monotonic() < deadline
        time.sleep(0.02)
    time.sleep(0.2)
    report = client.shutdown(drain=False)
    assert report["leaked_segments"] == []
    record = server.records[job_id]
    # Parked, not lost: the checkpoint survives in the job table.
    assert record.state == JobState.QUEUED
    assert record.checkpoint is not None
    assert record.checkpoint["cycle"] > 0
    events = [e["event"] for e in server.events]
    assert events[-1] == "shutdown"
    with pytest.raises(ServeError, match="shutting down"):
        client.submit(PING)


def test_shutdown_drain_lets_jobs_finish(server):
    client = InProcessClient(server)
    job_id = client.submit(PING)
    report = client.shutdown(drain=True)
    assert report["leaked_segments"] == []
    assert server.records[job_id].state == JobState.DONE


def test_event_log_is_well_formed_jsonl(tmp_path):
    import json

    log_path = str(tmp_path / "events.jsonl")
    server = JobServer(
        farm=ServeFarm({"f1.2xlarge": 2}), event_log=log_path
    ).start()
    client = InProcessClient(server)
    try:
        job_id = client.submit(PING)
        client.wait(job_id, timeout_s=120)
        client.shutdown()
    finally:
        server.stop()
    with open(log_path) as handle:
        events = [json.loads(line) for line in handle]
    assert [e["event"] for e in events] == [
        "serving", "submitted", "started", "completed", "shutdown",
    ]
    assert [e["seq"] for e in events] == list(range(len(events)))
    assert all("ts" in e for e in events)


# -- CLI round-trips -----------------------------------------------------


@pytest.fixture
def endpoint(server, tmp_path):
    path = str(tmp_path / "serve.sock")
    ep = SocketEndpoint(server, path).start()
    yield path
    ep.close()


def run_cli(argv):
    import io

    out, err = io.StringIO(), io.StringIO()
    code = cli.main(argv, out=out, err=err)
    return code, out.getvalue(), err.getvalue()


def test_cli_submit_wait_jobs_cancel_roundtrip(endpoint):
    code, out, _ = run_cli([
        "submit", "--serve-socket", endpoint, "--workload", "ping",
        "--servers-per-rack", "2", "--duration-ms", "0.5",
        "--job-name", "cli-job", "--wait",
    ])
    assert code == 0
    assert "submitted job 1" in out and "job 1 done" in out

    code, out, _ = run_cli(["jobs", "--serve-socket", endpoint])
    assert code == 0
    assert "'cli-job' done" in out
    assert "pricing=spot" in out

    code, out, _ = run_cli([
        "submit", "--serve-socket", endpoint, "--duration-ms", "40",
        "--servers-per-rack", "2", "--no-preempt",
    ])
    assert code == 0
    code, out, _ = run_cli([
        "cancel", "--serve-socket", endpoint, "--job-id", "2",
    ])
    assert code == 0


def test_cli_server_errors_are_one_line_nonzero(endpoint):
    code, out, err = run_cli([
        "cancel", "--serve-socket", endpoint, "--job-id", "99",
    ])
    assert code == 1
    assert err.startswith("firesim: error:") and "unknown job id 99" in err
    assert out == ""

    code, _, err = run_cli(["cancel", "--serve-socket", endpoint])
    assert code == 1
    assert "requires --job-id" in err


def test_cli_rejects_mixed_and_unreachable(tmp_path):
    code, _, err = run_cli(["submit", "runworkload"])
    assert code == 1
    assert "cannot be mixed" in err

    missing = str(tmp_path / "nowhere.sock")
    code, _, err = run_cli(["jobs", "--serve-socket", missing])
    assert code == 1
    assert "cannot reach job server" in err


def test_socket_endpoint_refuses_existing_path(server, tmp_path):
    path = str(tmp_path / "dup.sock")
    ep = SocketEndpoint(server, path).start()
    try:
        with pytest.raises(ServeError, match="already exists"):
            SocketEndpoint(server, path).start()
    finally:
        ep.close()
    assert not os.path.exists(path)
