"""Server blade FAME-1 endpoint (repro.swmodel.server)."""


from repro.core.token import TokenBatch, TokenWindow
from repro.swmodel.process import Compute
from repro.swmodel.server import ServerBlade
from repro.tile.soc import RocketChipConfig


class TestConstruction:
    def test_named_config(self):
        blade = ServerBlade("node0", config="DualCore", node_index=0)
        assert blade.config.num_cores == 2

    def test_explicit_config(self):
        blade = ServerBlade(
            "node0", config=RocketChipConfig(num_cores=1), node_index=0
        )
        assert blade.soc.num_cores == 1

    def test_mac_defaults_from_node_index(self):
        blade = ServerBlade("node7", node_index=7)
        assert blade.mac == 0x02_00_00_00_00_07

    def test_single_net_port(self):
        assert ServerBlade("n", node_index=0).ports == ["net"]


class TestTokenContract:
    def test_tick_conserves_tokens(self):
        blade = ServerBlade("n", node_index=0)
        window = TokenWindow(0, 1000)
        outputs = blade.tick(window, {"net": TokenBatch.empty(0, 1000)})
        assert outputs["net"].length == 1000
        assert outputs["net"].start_cycle == 0

    def test_idle_blade_emits_empty_tokens(self):
        blade = ServerBlade("n", node_index=0)
        window = TokenWindow(0, 1000)
        outputs = blade.tick(window, {"net": TokenBatch.empty(0, 1000)})
        assert outputs["net"].valid_count == 0

    def test_thread_work_advances_with_windows(self):
        blade = ServerBlade("n", node_index=0)

        def body(api):
            yield Compute(5_000)
            api.record("done_at", api.now())

        blade.spawn("w", body)
        for start in range(0, 10_000, 1000):
            window = TokenWindow(start, start + 1000)
            blade.tick(window, {"net": TokenBatch.empty(start, 1000)})
        assert "done_at" in blade.results
        assert blade.results["done_at"][0] >= 5_000

    def test_results_property_mirrors_kernel(self):
        blade = ServerBlade("n", node_index=0)
        blade.kernel.results["key"] = [1]
        assert blade.results["key"] == [1]
