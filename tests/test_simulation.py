"""Global orchestration and the cycle-exactness contract (§III-B2)."""

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.core.fame import Fame1Model, NullModel
from repro.core.simulation import Simulation
from repro.net.ethernet import EthernetFrame, mac_address
from repro.net.switch import SwitchConfig, SwitchModel


class OneShotSender(Fame1Model):
    """Emits one frame's flits starting at a chosen cycle."""

    def __init__(self, name, frame, at_cycle):
        super().__init__(name, ["net"])
        self.frame = frame
        self.at_cycle = at_cycle
        self.sent = False

    def _tick(self, window, inputs):
        out = window.new_batch()
        if not self.sent and window.start <= self.at_cycle < window.end:
            for index, flit in enumerate(self.frame.to_flits()):
                out.add(self.at_cycle + index, flit)
            self.sent = True
        return {"net": out}


class ArrivalRecorder(Fame1Model):
    def __init__(self, name):
        super().__init__(name, ["net"])
        self.last_flit_cycles = []

    def _tick(self, window, inputs):
        for cycle, flit in inputs["net"].iter_flits():
            if flit.last:
                self.last_flit_cycles.append(cycle)
        return {"net": window.new_batch()}


def _switched_pair(link_latency, switching_latency, at_cycle, frame_bytes=64):
    sim = Simulation()
    frame = EthernetFrame(
        src=mac_address(0), dst=mac_address(1), size_bytes=frame_bytes
    )
    sender = sim.add_model(OneShotSender("A", frame, at_cycle))
    receiver = sim.add_model(ArrivalRecorder("B"))
    switch = sim.add_model(
        SwitchModel(
            "tor",
            SwitchConfig(num_ports=2, min_latency_cycles=switching_latency),
            mac_table={mac_address(1): 1},
        )
    )
    sim.connect(sender, "net", switch, "port0", link_latency)
    sim.connect(switch, "port1", receiver, "net", link_latency)
    return sim, frame, receiver


class TestDeliveryFormula:
    """The paper's Section III-B2 walk-through: a packet sent at cycle m
    through a switch with port-to-port latency n arrives at 2l + m + n."""

    def test_min_frame_arrives_at_2l_plus_m_plus_n_shifted_by_length(self):
        l, n, m = 100, 10, 37
        sim, frame, receiver = _switched_pair(l, n, m, frame_bytes=64)
        sim.run_cycles(6 * l)
        flits = frame.flit_count  # 8 for a minimum Ethernet frame
        # First flit of the packet reaches B's NIC at 2l + m + n (the
        # paper's walk-through); the last flit follows flit-count - 1
        # cycles later on each serialization.
        first_flit_arrival = 2 * l + m + n + (flits - 1)
        expected_last = first_flit_arrival + (flits - 1)
        assert receiver.last_flit_cycles == [expected_last]

    @settings(max_examples=25, deadline=None)
    @given(
        l=st.integers(min_value=32, max_value=512),
        n=st.integers(min_value=0, max_value=32),
        m=st.integers(min_value=0, max_value=200),
        flits=st.integers(min_value=8, max_value=32),
    )
    def test_formula_holds_for_any_latency_and_size(self, l, n, m, flits):
        # The one-shot sender emits within a single window.
        assume(m + flits <= l)
        sim, frame, receiver = _switched_pair(l, n, m, frame_bytes=flits * 8)
        sim.run_cycles(m + 4 * l + n + flits * 2 + 4 * l)
        # Last flit leaves A at m+flits-1, is timestamped at arrival+n,
        # and the store-and-forward egress serializes flits at link rate.
        expected = (m + flits - 1 + l + n) + (flits - 1) + l
        assert receiver.last_flit_cycles == [expected]


class TestOrchestration:
    def test_quantum_is_min_link_latency(self):
        sim = Simulation()
        a, b = NullModel("a", ["x", "y"]), NullModel("b", ["x", "y"])
        sim.add_model(a)
        sim.add_model(b)
        sim.connect(a, "x", b, "x", 64)
        sim.connect(a, "y", b, "y", 256)
        assert sim.quantum == 64

    def test_unconnected_port_refuses_to_start(self):
        sim = Simulation()
        a = sim.add_model(NullModel("a", ["x", "y"]))
        b = sim.add_model(NullModel("b", ["x", "y"]))
        sim.connect(a, "x", b, "x", 8)
        with pytest.raises(RuntimeError, match="not connected"):
            sim.run_cycles(8)

    def test_double_connect_rejected(self):
        sim = Simulation()
        a = sim.add_model(NullModel("a", ["x"]))
        b = sim.add_model(NullModel("b", ["x"]))
        sim.connect(a, "x", b, "x", 8)
        c = sim.add_model(NullModel("c", ["x"]))
        with pytest.raises(ValueError, match="already connected"):
            sim.connect(a, "x", c, "x", 8)

    def test_unknown_port_rejected(self):
        sim = Simulation()
        a = sim.add_model(NullModel("a", ["x"]))
        b = sim.add_model(NullModel("b", ["x"]))
        with pytest.raises(ValueError, match="no port"):
            sim.connect(a, "nope", b, "x", 8)

    def test_duplicate_model_rejected(self):
        sim = Simulation()
        a = sim.add_model(NullModel("a", ["x"]))
        with pytest.raises(ValueError):
            sim.add_model(a)

    def test_runs_whole_quanta(self):
        sim = Simulation()
        a = sim.add_model(NullModel("a", ["x"]))
        b = sim.add_model(NullModel("b", ["x"]))
        sim.connect(a, "x", b, "x", 100)
        sim.run_cycles(150)
        assert sim.current_cycle == 200  # rounded up to whole quanta

    def test_stats_count_tokens(self):
        sim = Simulation()
        a = sim.add_model(NullModel("a", ["x"]))
        b = sim.add_model(NullModel("b", ["x"]))
        sim.connect(a, "x", b, "x", 10)
        sim.run_cycles(50)
        assert sim.stats.rounds == 5
        # Two models each push 10 tokens per round.
        assert sim.stats.tokens_moved == 5 * 2 * 10
        assert sim.stats.utilization == 0.0

    def test_cannot_modify_after_start(self):
        sim = Simulation()
        a = sim.add_model(NullModel("a", ["x"]))
        b = sim.add_model(NullModel("b", ["x"]))
        sim.connect(a, "x", b, "x", 10)
        sim.run_cycles(10)
        with pytest.raises(RuntimeError):
            sim.add_model(NullModel("c", ["x"]))

    def test_run_seconds_uses_clock(self):
        sim = Simulation()
        a = sim.add_model(NullModel("a", ["x"]))
        b = sim.add_model(NullModel("b", ["x"]))
        sim.connect(a, "x", b, "x", 6400)
        sim.run_seconds(2e-6)
        assert sim.current_cycle == 6400
        assert sim.current_time_s == pytest.approx(2e-6)


class TestDeterminism:
    def test_identical_configs_produce_identical_arrivals(self):
        results = []
        for _ in range(2):
            sim, _, receiver = _switched_pair(64, 10, 7, frame_bytes=256)
            sim.run_cycles(600)
            results.append(tuple(receiver.last_flit_cycles))
        assert results[0] == results[1]


class TestSnapshotResume:
    """Quantum-boundary checkpoint/restore keeps the run cycle-exact."""

    def test_resumed_run_matches_uninterrupted_cycle_for_cycle(self):
        from repro.faults.checkpoint import SimulationSnapshot

        # Uninterrupted reference run.
        sim, _, receiver = _switched_pair(64, 10, 7, frame_bytes=256)
        sim.run_cycles(600)
        reference = list(receiver.last_flit_cycles)
        reference_stats = (
            sim.stats.rounds, sim.stats.tokens_moved,
            sim.stats.valid_tokens_moved,
        )

        # Crash after 128 cycles, restore, and resume.
        sim, _, _ = _switched_pair(64, 10, 7, frame_bytes=256)
        sim.run_cycles(128)
        snapshot = SimulationSnapshot.capture(sim)
        sim.run_cycles(256)  # "lost" progress past the checkpoint
        snapshot.restore(sim)
        assert sim.current_cycle == 128
        sim.run_cycles(600 - 128)
        resumed_receiver = next(m for m in sim.models if m.name == "B")
        assert resumed_receiver.last_flit_cycles == reference
        assert (
            sim.stats.rounds, sim.stats.tokens_moved,
            sim.stats.valid_tokens_moved,
        ) == reference_stats

    def test_fault_hook_sees_round_starts_and_model_ticks(self):
        sim, _, _ = _switched_pair(64, 10, 7)
        calls = []
        sim.fault_hook = lambda cycle, model: calls.append(
            (cycle, None if model is None else model.name)
        )
        sim.run_cycles(128)  # two 64-cycle rounds
        assert calls[0] == (0, None)  # round start
        assert [name for _, name in calls[:4]] == [None, "A", "B", "tor"]
        assert calls[4] == (64, None)
        assert len(calls) == 8
