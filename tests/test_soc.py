"""Server SoC configurations (repro.tile.soc, Table I)."""

import pytest

from repro.tile.soc import NAMED_CONFIGS, RocketChipConfig, config_by_name


class TestRocketChipConfig:
    def test_table_i_defaults(self):
        config = RocketChipConfig()
        assert config.num_cores == 4
        assert config.freq_hz == 3.2e9
        assert config.l1i.size_bytes == 16 * 1024
        assert config.l1d.size_bytes == 16 * 1024
        assert config.l2.size_bytes == 256 * 1024
        assert config.dram.capacity_bytes == 16 * 1024**3
        assert config.nic_bandwidth_bps == 200e9

    def test_core_count_bounds(self):
        with pytest.raises(ValueError):
            RocketChipConfig(num_cores=0)
        with pytest.raises(ValueError):
            RocketChipConfig(num_cores=5)

    def test_unknown_accelerator_rejected(self):
        with pytest.raises(ValueError):
            RocketChipConfig(accelerators=("tpu",))

    def test_clock_property(self):
        assert RocketChipConfig().clock.cycles(2e-6) == 6400


class TestNamedConfigs:
    def test_quadcore_present(self):
        assert config_by_name("QuadCore").num_cores == 4

    def test_all_names_resolve(self):
        for name in NAMED_CONFIGS:
            assert config_by_name(name).name == name

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown server configuration"):
            config_by_name("OctoCore")

    def test_accelerated_variants(self):
        assert "hwacha" in config_by_name("QuadCoreHwacha").accelerators
        assert "pfa" in config_by_name("QuadCorePFA").accelerators


class TestElaboration:
    def test_build_produces_cores_and_shared_l2(self):
        soc = config_by_name("QuadCore").build()
        assert len(soc.cores) == 4
        assert soc.cores[0].hierarchy.l2 is soc.cores[3].hierarchy.l2

    def test_dma_hierarchy_shares_l2_and_dram(self):
        soc = config_by_name("DualCore").build()
        assert soc.dma_hierarchy.l2 is soc.l2
        assert soc.dma_hierarchy.dram is soc.dram

    def test_accelerator_lookup(self):
        soc = config_by_name("QuadCoreHwacha").build()
        assert soc.accelerator("hwacha") is not None
        with pytest.raises(LookupError):
            soc.accelerator("hls")

    def test_cores_have_private_l1(self):
        soc = config_by_name("QuadCore").build()
        l1s = {id(core.hierarchy.l1d) for core in soc.cores}
        assert len(l1s) == 4
