"""Pluggable storage timing models (repro.blockdev.storage_models, §VIII)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.blockdev.storage_models import (
    DiskTiming,
    SSDTiming,
    TimedStorageDevice,
    XPointTiming,
    storage_model,
)


class TestRegistry:
    def test_three_technologies(self):
        assert storage_model("disk").name == "disk"
        assert storage_model("ssd").name == "ssd"
        assert storage_model("3dxpoint").name == "3dxpoint"

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            storage_model("mram")


class TestLatencyOrdering:
    def test_technology_hierarchy_for_small_reads(self):
        """XPoint < SSD < disk for a 4 KiB random read (the §VIII point
        of pluggable models: the hierarchy gaps are orders of magnitude)."""
        read = lambda timing: timing.request_cycles(1_000_000, 8, False, 0)
        disk = read(DiskTiming())
        ssd = read(SSDTiming())
        xpoint = read(XPointTiming())
        assert xpoint < ssd < disk
        assert disk / xpoint > 100

    def test_ssd_write_slower_than_read(self):
        ssd = SSDTiming()
        read = ssd.request_cycles(0, 64, False, 0)
        write = ssd.request_cycles(0, 64, True, 0)
        assert write > read

    def test_disk_seek_depends_on_distance(self):
        disk = DiskTiming()
        near = disk.request_cycles(1000, 8, False, 992)
        far = disk.request_cycles(16_000_000, 8, False, 0)
        assert far > near

    def test_xpoint_write_penalty(self):
        xpoint = XPointTiming()
        assert xpoint.request_cycles(0, 8, True, 0) > xpoint.request_cycles(
            0, 8, False, 0
        )

    def test_ssd_channels_parallelize(self):
        wide = SSDTiming(channels=8)
        narrow = SSDTiming(channels=1)
        assert wide.request_cycles(0, 64, False, 0) < narrow.request_cycles(
            0, 64, False, 0
        )


class TestTimedStorageDevice:
    def test_requests_serialize_on_device(self):
        device = TimedStorageDevice(XPointTiming())
        first = device.submit(0, 0, 8, False)
        second = device.submit(0, 64, 8, False)
        assert second > first

    def test_out_of_range_rejected(self):
        device = TimedStorageDevice(SSDTiming(), capacity_sectors=100)
        with pytest.raises(ValueError):
            device.submit(0, 99, 2, False)
        with pytest.raises(ValueError):
            device.submit(0, 0, 0, False)

    def test_sequential_disk_stream_faster_than_random(self):
        def total(addresses):
            device = TimedStorageDevice(DiskTiming())
            cycle = 0
            for sector in addresses:
                cycle = device.submit(cycle, sector, 64, False)
            return cycle

        sequential = total(range(0, 64 * 32, 64))
        random_ish = total([(i * 7_919_113) % 30_000_000 for i in range(32)])
        assert sequential < random_ish

    @settings(max_examples=25)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=1_000_000),
                st.integers(min_value=1, max_value=256),
                st.booleans(),
            ),
            min_size=1,
            max_size=30,
        )
    )
    def test_completions_monotone_for_all_models(self, requests):
        for name in ("disk", "ssd", "3dxpoint"):
            device = TimedStorageDevice(storage_model(name))
            last = 0
            for sector, count, is_write in requests:
                done = device.submit(0, sector, count, is_write)
                assert done >= last
                last = done


class TestControllerIntegration:
    """The §VIII plug point: the block device controller accepts a
    technology model in place of its fixed constants."""

    def _controller(self, timing):
        from repro.blockdev.controller import BlockDeviceController
        from repro.tile.caches import (
            CacheModel,
            L1D_CONFIG,
            L2_CONFIG,
            MemoryHierarchy,
        )
        from repro.tile.dram import DRAMModel

        hierarchy = MemoryHierarchy(
            CacheModel("l1", L1D_CONFIG), CacheModel("l2", L2_CONFIG), DRAMModel()
        )
        return BlockDeviceController("blkdev", hierarchy, timing=timing)

    def test_xpoint_controller_faster_than_disk_controller(self):
        from repro.blockdev.controller import BlockRequest

        fast = self._controller(XPointTiming())
        slow = self._controller(DiskTiming())
        request = BlockRequest(1_000_000, 8, 0x1000, is_write=False)
        fast.allocate(0, request)
        slow.allocate(0, BlockRequest(1_000_000, 8, 0x1000, is_write=False))
        assert fast.completion_queue[0][0] < slow.completion_queue[0][0]

    def test_default_constant_model_still_works(self):
        from repro.blockdev.controller import BlockRequest

        dev = self._controller(None)
        dev.allocate(0, BlockRequest(0, 4, 0, is_write=False))
        assert dev.completion_queue
