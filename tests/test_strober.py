"""Strober-style sample-based energy estimation (repro.host.strober)."""

import pytest

from repro.host.strober import (
    ActivitySample,
    EnergyReport,
    PowerModel,
    StroberSampler,
)
from repro.manager.runfarm import RunFarmConfig, elaborate
from repro.manager.topology import single_rack
from repro.swmodel.apps.iperf import make_iperf_client, make_iperf_server
from repro.swmodel.process import Compute


def _busy_blade_sim():
    sim = elaborate(single_rack(2), RunFarmConfig())
    blade = sim.blade(0)

    def spin(api):
        for _ in range(50):
            yield Compute(100_000)

    blade.spawn("spin", spin)
    return sim, blade


class TestPowerModel:
    def test_idle_window_costs_static_power_only(self):
        model = PowerModel()
        sample = ActivitySample(0, 3_200_000, 0, 0, 0, 0, 0)  # 1 ms idle
        energy = model.sample_energy_j(sample)
        assert energy == pytest.approx(model.static_watts * 1e-3)

    def test_activity_adds_dynamic_energy(self):
        model = PowerModel()
        idle = ActivitySample(0, 1000, 0, 0, 0, 0, 0)
        busy = ActivitySample(0, 1000, 1000, 500, 50, 5, 100)
        assert model.sample_energy_j(busy) > model.sample_energy_j(idle)

    def test_dram_is_most_expensive_per_event(self):
        model = PowerModel()
        assert model.dram_burst_pj > model.l2_access_pj > model.l1_access_pj


class TestSampler:
    def test_sampling_before_interval_returns_none(self):
        sim, blade = _busy_blade_sim()
        sampler = StroberSampler(blade, interval_cycles=1_000_000)
        sim.run_cycles(100_000)
        assert sampler.sample(sim.simulation.current_cycle) is None

    def test_samples_capture_activity_deltas(self):
        sim, blade = _busy_blade_sim()
        sampler = StroberSampler(blade, interval_cycles=500_000)
        sim.run_cycles(600_000)
        sample = sampler.sample(sim.simulation.current_cycle)
        assert sample is not None
        assert sample.instructions >= 0
        assert sample.cycles >= 500_000

    def test_report_integrates_power(self):
        sim, blade = _busy_blade_sim()
        sampler = StroberSampler(blade, interval_cycles=400_000)
        for _ in range(5):
            sim.run_cycles(400_000)
            sampler.sample(sim.simulation.current_cycle)
        report = sampler.report()
        assert report.samples == 5
        # A busy core must exceed the static floor but stay server-SoC
        # plausible (single-digit watts).
        assert PowerModel().static_watts <= report.average_power_w < 20

    def test_bad_interval_rejected(self):
        sim, blade = _busy_blade_sim()
        with pytest.raises(ValueError):
            StroberSampler(blade, interval_cycles=0)

    def test_network_traffic_shows_in_nic_energy(self):
        sim = elaborate(single_rack(2), RunFarmConfig())
        server = sim.blade(1)
        server.spawn("iperf-s", make_iperf_server())
        sim.blade(0).spawn(
            "iperf-c", make_iperf_client(server.mac, total_bytes=200_000)
        )
        sampler = StroberSampler(sim.blade(0), interval_cycles=1_000_000)
        sim.run_seconds(0.002)
        sample = sampler.sample(sim.simulation.current_cycle)
        assert sample is not None
        assert sample.nic_flits > 0


class TestEdgeCases:
    def test_sample_exactly_on_interval_boundary(self):
        """cycle - last == interval is a full window: it must sample."""
        sim, blade = _busy_blade_sim()
        sampler = StroberSampler(blade, interval_cycles=500_000)
        assert sampler.sample(499_999) is None
        sample = sampler.sample(500_000)
        assert sample is not None
        assert sample.cycles == 500_000
        assert sample.start_cycle == 0

    def test_sample_twice_at_same_cycle_records_once(self):
        sim, blade = _busy_blade_sim()
        sampler = StroberSampler(blade, interval_cycles=100_000)
        sim.run_cycles(200_000)
        cycle = sim.simulation.current_cycle
        first = sampler.sample(cycle)
        second = sampler.sample(cycle)
        assert first is not None
        assert second is None  # zero-width window: nothing recorded
        assert len(sampler.samples) == 1

    def test_report_with_zero_samples(self):
        sim, blade = _busy_blade_sim()
        sampler = StroberSampler(blade, interval_cycles=1_000_000)
        report = sampler.report()
        assert report.samples == 0
        assert report.total_energy_j == 0.0
        assert report.average_power_w == 0.0

    def test_register_metrics_tracks_live_estimate(self):
        from repro.obs.metrics import MetricsRegistry

        sim, blade = _busy_blade_sim()
        sampler = StroberSampler(blade, interval_cycles=400_000)
        registry = MetricsRegistry()
        sampler.register_metrics(registry)
        assert registry.snapshot()[f"strober.{blade.name}.samples"] == 0.0
        sim.run_cycles(400_000)
        sampler.sample(sim.simulation.current_cycle)
        snap = registry.snapshot()
        assert snap[f"strober.{blade.name}.samples"] == 1.0
        assert snap[f"strober.{blade.name}.total_energy_j"] > 0.0


class TestConvergence:
    def test_fine_sampling_matches_coarse_total_energy(self):
        """Strober's claim: sampling interval trades overhead, not
        accuracy, when activity is integrated over whole windows."""

        def total_energy(interval):
            sim, blade = _busy_blade_sim()
            sampler = StroberSampler(blade, interval_cycles=interval)
            for _ in range(8):
                sim.run_cycles(400_000)
                sampler.sample(sim.simulation.current_cycle)
            return sampler.report().total_energy_j

        coarse = total_energy(1_600_000)
        fine = total_energy(400_000)
        assert fine == pytest.approx(coarse, rel=0.05)
