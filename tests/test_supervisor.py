"""Distributed supervision (repro.dist.supervisor) and shm integrity.

Covers the self-healing taxonomy end to end: heartbeat publication and
wraparound, adaptive hang detection, SIGTERM->SIGKILL escalation, shm
frame CRC/sequence integrity, wakeup-loss self-healing, the manager's
recovery ladder (restore -> transport degradation -> serial fallback),
and the engine's dead-worker bookkeeping fixes (clean-exit-no-result
detection, join-timeout reaping).  Every recovery path must end
bit-identical to the serial oracle.
"""

import io
import json
import multiprocessing
import os
import signal
import time

import pytest

from repro import ConfigError
from repro.core.channel import TokenStarvationError
from repro.dist import plan_partitions, run_distributed
from repro.dist.shm import ShmRing, leaked_segments
from repro.dist.supervisor import (
    HB_COMPUTE,
    SLOT_DEPTH,
    HeartbeatBlock,
    Supervisor,
    SupervisorConfig,
)
from repro.dist.worker import PipeChannel, shard_entry
from repro.faults.plan import (
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultSpec,
    ResilienceStats,
    RingCorruption,
    WorkerCrash,
    WorkerHang,
)
from repro.faults.retry import RetryPolicy
from repro.manager.cli import main as cli_main
from repro.manager.manager import FireSimManager, ManagerError
from repro.manager.mapper import map_topology
from repro.manager.runfarm import RunFarmConfig
from repro.manager.topology import two_tier
from repro.manager.workload import WorkloadSpec
from repro.swmodel.apps.ping import RESULT_KEY, make_ping_client

from tests.test_dist import (
    ONE_FPGA,
    TARGET_CYCLES,
    build,
    fingerprint,
    serial_fingerprint,
)

#: Fires well inside the 640k-cycle managed runs and the 700k-cycle
#: engine-level runs, after the round loop has warmed up.
FAULT_CYCLE = 100_000
#: Hang-deadline floor for tests: long enough that fork/startup never
#: false-positives on a loaded CI host, short enough to keep tests fast.
HANG_FLOOR_S = 2.0


def _spec(kind, **kwargs):
    return FaultSpec(kind=kind, point="runworkload",
                     at_cycle=FAULT_CYCLE, **kwargs)


# -- heartbeat block ------------------------------------------------------


class TestHeartbeatBlock:
    def test_no_beat_reads_none(self):
        block = HeartbeatBlock.create(2)
        try:
            assert block.read(0) is None
            assert block.history(1) == []
        finally:
            block.destroy()
        assert leaked_segments() == []

    def test_beat_roundtrip(self):
        block = HeartbeatBlock.create(1)
        try:
            block.writer(0).beat(7, HB_COMPUTE)
            beat = block.read(0)
            assert beat is not None
            assert (beat.worker_id, beat.seq, beat.round) == (0, 1, 7)
            assert beat.phase_name == "compute"
            assert beat.stamp_s > 0.0
        finally:
            block.destroy()

    def test_slot_wraparound_keeps_newest_beats(self):
        """More beats than SLOT_DEPTH: read() stays current and
        history() returns the newest window, oldest first."""
        block = HeartbeatBlock.create(1)
        try:
            writer = block.writer(0)
            total = SLOT_DEPTH * 2 + 4
            for round_index in range(total):
                writer.beat(round_index, HB_COMPUTE)
            newest = block.read(0)
            assert newest.seq == total
            assert newest.round == total - 1
            history = block.history(0)
            assert len(history) == SLOT_DEPTH
            assert [beat.round for beat in history] == list(
                range(total - SLOT_DEPTH, total)
            )
            assert [beat.seq for beat in history] == list(
                range(total - SLOT_DEPTH + 1, total + 1)
            )
        finally:
            block.destroy()

    def test_destroy_is_idempotent(self):
        block = HeartbeatBlock.create(1)
        block.destroy()
        block.destroy()
        assert leaked_segments() == []


# -- supervisor unit ------------------------------------------------------


def _ignore_term_and_sleep(ready):
    signal.signal(signal.SIGTERM, signal.SIG_IGN)
    ready.set()
    while True:
        time.sleep(60.0)


class TestSupervisor:
    def test_config_validation(self):
        with pytest.raises(ConfigError, match="hang_timeout_s"):
            SupervisorConfig(hang_timeout_s=0.0)
        with pytest.raises(ConfigError, match="round_grace"):
            SupervisorConfig(round_grace=0.5)
        with pytest.raises(ConfigError, match="kill_grace_s"):
            SupervisorConfig(kill_grace_s=-1.0)

    def test_disabled_without_block(self):
        supervisor = Supervisor(None, 2, SupervisorConfig())
        assert supervisor.enabled is False
        assert supervisor.poll(set()) is None
        report = supervisor.report()
        assert report["enabled"] is False
        assert report["deadline_s"] == 0.0

    def test_silent_worker_gets_startup_verdict(self):
        """A worker that never beats is declared hung 'before its first
        heartbeat' while its beating peer stays in good standing."""
        block = HeartbeatBlock.create(2)
        try:
            supervisor = Supervisor(
                block, 2, SupervisorConfig(hang_timeout_s=0.05)
            )
            writer = block.writer(0)
            deadline = time.monotonic() + 10.0
            verdict = None
            rounds = 0
            while verdict is None and time.monotonic() < deadline:
                rounds += 1
                writer.beat(rounds, HB_COMPUTE)
                time.sleep(0.02)
                verdict = supervisor.poll(set())
            assert verdict is not None, "no hang verdict within 10s"
            assert verdict.worker_id == 1
            assert verdict.seq == 0
            assert "before its first heartbeat" in verdict.describe()
            report = supervisor.report()
            assert report["hangs"] == 1
            assert report["beats"] >= rounds
            assert report["verdicts"] == [verdict.describe()]
        finally:
            block.destroy()

    def test_done_workers_are_not_polled(self):
        block = HeartbeatBlock.create(2)
        try:
            supervisor = Supervisor(
                block, 2, SupervisorConfig(hang_timeout_s=0.01)
            )
            block.writer(0).beat(0, HB_COMPUTE)
            supervisor.poll({1})
            time.sleep(0.05)
            # Both workers are idle past the floor, but both are
            # excluded: 1 is done, 0 is done too.
            assert supervisor.poll({0, 1}) is None
        finally:
            block.destroy()

    def test_adaptive_deadline_tracks_round_time(self):
        """Observed slow rounds stretch the deadline above the floor."""
        block = HeartbeatBlock.create(1)
        try:
            config = SupervisorConfig(hang_timeout_s=0.01, round_grace=16.0)
            supervisor = Supervisor(block, 1, config)
            writer = block.writer(0)
            writer.beat(0, HB_COMPUTE)
            supervisor.poll(set())
            assert supervisor.deadline_s() == config.hang_timeout_s
            time.sleep(0.05)
            writer.beat(1, HB_COMPUTE)
            supervisor.poll(set())
            assert supervisor.deadline_s() > config.hang_timeout_s
            assert supervisor.deadline_s() >= 16.0 * 0.04
        finally:
            block.destroy()

    def test_kill_escalates_past_sigterm(self):
        """A SIGTERM-immune process still dies (SIGKILL) and is reaped."""
        context = multiprocessing.get_context("fork")
        ready = context.Event()
        process = context.Process(
            target=_ignore_term_and_sleep, args=(ready,)
        )
        process.start()
        assert ready.wait(timeout=10.0)
        stats = ResilienceStats()
        supervisor = Supervisor(
            None, 1, SupervisorConfig(kill_grace_s=0.2), stats=stats
        )
        supervisor.kill(process)
        assert not process.is_alive()
        assert process.exitcode is not None
        assert supervisor.workers_killed == 1
        assert stats.workers_killed == 1


# -- shm frame integrity --------------------------------------------------


class TestRingIntegrity:
    @pytest.fixture
    def ring(self):
        ring = ShmRing.create(0, 1, capacity=4096)
        try:
            yield ring
        finally:
            ring.destroy()
        assert leaked_segments() == []

    def test_header_bit_flip_raises_ring_corruption(self, ring):
        """An empty frame is header-only, so the injected flip lands in
        the header and the header CRC must catch it."""
        ring.corrupt_next_send = True
        ring.send(0, [])
        with pytest.raises(RingCorruption, match="header failed its CRC32"):
            ring.recv(0)

    def test_payload_bit_flip_raises_ring_corruption(self, ring):
        from repro.core.token import TokenBatch

        ring.corrupt_next_send = True
        ring.send(0, [(0, TokenBatch(0, 640))])
        # try/except rather than pytest.raises-as: a bound ExceptionInfo
        # would pin recv's shm views via the traceback cycle and break
        # the fixture's destroy() with a BufferError.
        try:
            ring.recv(0)
        except RingCorruption as corruption:
            assert "payload failed its CRC32" in str(corruption)
            assert corruption.ring == "ring:0->1"
            assert corruption.kind is FaultKind.RING_CORRUPT
        else:
            pytest.fail("corrupted payload was decoded")

    def test_sequence_skew_raises_ring_corruption(self, ring):
        ring.send(0, [])
        ring._send_seq += 1  # a frame the reader never sees
        ring.send(1, [])
        assert ring.recv(0) == []
        with pytest.raises(RingCorruption, match="sequence skew"):
            ring.recv(1)

    def test_clean_frames_count_no_corruption(self, ring):
        for round_tag in range(3):
            ring.send(round_tag, [])
            assert ring.recv(round_tag) == []
        assert ring.counters()["wakeup_recoveries"] == 0

    def test_lost_wakeup_self_heals(self, ring):
        """Data published without a semaphore permit: the reader's
        cursor check recovers instead of starving."""
        ring.drop_next_wakeup = True
        ring.send(0, [])
        assert ring.recv(0) == []
        assert ring.wakeup_recoveries == 1
        # Subsequent traffic is back to the permit fast path.
        ring.send(1, [])
        assert ring.recv(1) == []
        assert ring.wakeup_recoveries == 1


# -- engine-level faults --------------------------------------------------


def _silent_exit_entry(context, worker_id):
    if worker_id == 1:
        os._exit(0)  # dies cleanly before reporting anything
    shard_entry(context, worker_id)


def _lingering_entry(context, worker_id):
    shard_entry(context, worker_id)
    if worker_id == 1:
        time.sleep(60.0)  # result shipped, process refuses to exit


class TestEngineFaults:
    def _plan(self, topo_key="two_tier_2x2", workers=2):
        running, root = build(topo_key)
        deployment = map_topology(root, ONE_FPGA)
        return running, plan_partitions(running, deployment, workers)

    def test_hung_worker_is_killed_and_raised(self):
        """An injected livelock stops heartbeat progress; the supervisor
        kills the worker and the run surfaces it as WorkerHang."""
        running, plan = self._plan()
        stats = ResilienceStats()
        injector = FaultInjector(
            FaultPlan(
                seed=2,
                specs=(_spec(FaultKind.WORKER_HANG, target="worker:1"),),
            ),
            stats,
        )
        injector.arm(running.simulation)
        with pytest.raises(WorkerHang, match="hung"):
            run_distributed(
                running.simulation, plan, TARGET_CYCLES,
                supervision=SupervisorConfig(
                    hang_timeout_s=HANG_FLOOR_S, kill_grace_s=1.0
                ),
                stats=stats,
            )
        assert stats.hangs_detected == 1
        assert stats.workers_killed >= 1
        assert leaked_segments() == []

    def test_clean_exit_without_result_is_a_crash_not_a_spin(
        self, monkeypatch
    ):
        """A worker that exits 0 before reporting used to stall the
        collection loop forever (the liveness sweep excluded exit code
        0); it must surface as WorkerCrash after the result grace."""
        monkeypatch.setattr(
            "repro.dist.engine.shard_entry", _silent_exit_entry
        )
        monkeypatch.setattr("repro.dist.engine._RESULT_GRACE_S", 0.3)
        running, plan = self._plan()
        with pytest.raises(
            WorkerCrash, match="exited cleanly without reporting"
        ):
            run_distributed(running.simulation, plan, TARGET_CYCLES)
        assert leaked_segments() == []

    def test_lingering_worker_is_reaped_after_join_timeout(
        self, monkeypatch
    ):
        """A worker that reports its result but never exits is SIGKILLed
        after the join grace instead of leaking a process."""
        monkeypatch.setattr(
            "repro.dist.engine.shard_entry", _lingering_entry
        )
        monkeypatch.setattr("repro.dist.engine._JOIN_TIMEOUT_S", 0.5)
        running, plan = self._plan()
        stats = ResilienceStats()
        run_distributed(
            running.simulation, plan, TARGET_CYCLES, stats=stats
        )
        assert stats.join_timeouts == 1
        assert stats.workers_killed == 1
        assert fingerprint(running) == serial_fingerprint(
            "two_tier_2x2", None
        )
        assert leaked_segments() == []

    def test_supervision_report_rides_the_result(self):
        running, plan = self._plan("two_tier_4x2", workers=4)
        result = run_distributed(running.simulation, plan, TARGET_CYCLES)
        supervision = result.supervision
        assert supervision is not None
        assert supervision["enabled"] is True
        assert supervision["hangs"] == 0
        assert supervision["verdicts"] == []
        assert supervision["polls"] > 0
        assert supervision["beats"] > 0
        assert supervision["deadline_s"] >= 0.0
        assert result.to_dict()["supervision"] == supervision
        assert fingerprint(running) == serial_fingerprint(
            "two_tier_4x2", None
        )

    def test_denied_heartbeat_shm_degrades_to_crash_only(
        self, monkeypatch
    ):
        """No POSIX shared memory for the control block: the run still
        completes bit-identically, with supervision reported disabled."""

        def deny(*args, **kwargs):
            raise PermissionError("/dev/shm denied (test)")

        monkeypatch.setattr(
            "repro.dist.supervisor.shared_memory.SharedMemory", deny
        )
        running, plan = self._plan("single_rack_4")
        result = run_distributed(running.simulation, plan, TARGET_CYCLES)
        assert result.supervision["enabled"] is False
        assert result.supervision["beats"] == 0
        assert fingerprint(running) == serial_fingerprint(
            "single_rack_4", None
        )

    def test_transport_timeout_must_be_positive(self):
        running, plan = self._plan("single_rack_4")
        with pytest.raises(ConfigError, match="transport_timeout_s"):
            run_distributed(
                running.simulation, plan, TARGET_CYCLES,
                transport_timeout_s=0.0,
            )


class TestPipeTimeout:
    def test_pipe_recv_surfaces_starvation(self):
        queue = multiprocessing.get_context("fork").Queue()
        channel = PipeChannel(queue, 0, 1, timeout_s=0.2)
        start = time.monotonic()
        with pytest.raises(TokenStarvationError, match="stalled"):
            channel.recv(0)
        assert time.monotonic() - start < 5.0

    def test_manager_rejects_nonpositive_timeout(self):
        with pytest.raises(ManagerError, match="transport timeout"):
            FireSimManager(
                two_tier(num_racks=2, servers_per_rack=2),
                transport_timeout_s=0.0,
            )


# -- manager recovery ladder ----------------------------------------------


def _managed(fault_plan=None, workers=2, transport="pipe",
             telemetry=False, **kwargs):
    manager = FireSimManager(
        two_tier(num_racks=2, servers_per_rack=2),
        run_config=RunFarmConfig(link_latency_cycles=640),
        host_config=ONE_FPGA,
        fault_plan=fault_plan,
        workers=workers,
        transport=transport,
        **kwargs,
    )
    if telemetry:
        manager.enable_telemetry()
    manager.buildafi()
    manager.launchrunfarm()
    manager.infrasetup()
    workload = WorkloadSpec("ping", duration_seconds=0.0002)
    target = manager.running.blade(3)
    workload.add_job(
        0,
        "ping",
        lambda blade: blade.spawn(
            "ping",
            make_ping_client(target.mac, count=3, interval_cycles=50_000),
        ),
    )
    result = manager.runworkload(workload)
    return manager, result


_clean_cache = {}


def _clean_node_results():
    """A fault-free distributed run's results (serial-equal oracle)."""
    if "clean" not in _clean_cache:
        _, result = _managed()
        _clean_cache["clean"] = result.node_results
    return _clean_cache["clean"]


class TestManagerRecovery:
    def test_worker_hang_recovers_bit_identically(self):
        plan = FaultPlan(
            seed=11,
            specs=(_spec(FaultKind.WORKER_HANG, target="worker:1"),),
        )
        manager, result = _managed(
            fault_plan=plan, hang_timeout_s=HANG_FLOOR_S
        )
        assert manager.fault_stats.hangs_detected == 1
        assert manager.fault_stats.workers_killed >= 1
        assert manager.fault_stats.restores == 1
        assert manager.last_distributed.num_workers == 1
        assert result.node_results == _clean_node_results()
        assert result.node_results[0][RESULT_KEY]

    def test_ring_corruption_recovers_and_keeps_workers(self):
        plan = FaultPlan(
            seed=12,
            specs=(_spec(FaultKind.RING_CORRUPT, target="ring:0->1"),),
        )
        manager, result = _managed(fault_plan=plan, transport="shm")
        stats = manager.fault_stats
        assert stats.ring_corruptions == 1
        assert stats.restores == 1
        assert stats.transport_degradations == 0
        # A transport fault is not a worker fault: the rerun keeps both
        # workers and (one strike only) the shm transport.
        assert manager.last_distributed.num_workers == 2
        assert manager.last_distributed.transport == "shm"
        assert result.node_results == _clean_node_results()
        assert leaked_segments() == []

    def test_repeated_corruption_degrades_transport_to_pipe(self):
        plan = FaultPlan(
            seed=13,
            specs=(
                _spec(FaultKind.RING_CORRUPT, target="ring:0->1", times=2),
            ),
        )
        manager, result = _managed(fault_plan=plan, transport="shm")
        stats = manager.fault_stats
        assert stats.ring_corruptions == 2
        assert stats.restores == 2
        assert stats.transport_degradations == 1
        assert manager.last_distributed.transport == "pipe"
        summary = manager.resilience_summary()
        assert summary["quarantined_rings"] == ["ring:0->1"]
        assert summary["transport_degradations"] == 1
        assert result.node_results == _clean_node_results()
        assert leaked_segments() == []

    def test_exhausted_budget_falls_back_to_serial(self):
        """Faults past the restart budget finish the workload on the
        serial engine instead of failing it — degraded, still exact."""
        plan = FaultPlan(
            seed=14,
            specs=(
                _spec(FaultKind.RING_CORRUPT, target="ring:0->1", times=3),
            ),
        )
        manager, result = _managed(
            fault_plan=plan,
            transport="shm",
            retry_policy=RetryPolicy(max_retries=1),
            ring_failure_threshold=99,  # keep shm so every rerun refaults
        )
        stats = manager.fault_stats
        assert stats.serial_fallbacks == 1
        assert stats.restores == 2
        assert stats.giveups == 0
        assert manager.last_distributed is None  # no distributed success
        assert result.node_results == _clean_node_results()
        assert result.node_results[0][RESULT_KEY]
        assert leaked_segments() == []

    def test_wakeup_loss_heals_without_a_restore(self):
        plan = FaultPlan(
            seed=15, specs=(_spec(FaultKind.WAKEUP_LOSS),)
        )
        manager, result = _managed(fault_plan=plan, transport="shm")
        assert manager.fault_stats.restores == 0
        assert manager.fault_stats.ring_corruptions == 0
        assert result.node_results == _clean_node_results()
        assert leaked_segments() == []

    def test_supervisor_gauges_land_in_telemetry(self):
        manager, _ = _managed(telemetry=True)
        try:
            registry = manager.telemetry.registry
            assert registry.gauge("dist.supervisor.enabled").value == 1.0
            assert registry.gauge("dist.supervisor.hangs").value == 0.0
            assert registry.gauge("dist.supervisor.polls").value >= 0.0
            assert registry.gauge("dist.supervisor.deadline_s").value >= 0.0
        finally:
            manager.terminaterunfarm()


# -- CLI surface ----------------------------------------------------------


class TestCLI:
    ARGS = [
        "--topology", "two_tier", "--racks", "2", "--servers-per-rack", "2",
        "--duration-ms", "0.2",
    ]
    SESSION = [
        "buildafi", "launchrunfarm", "infrasetup", "runworkload", "status",
    ]

    def _plan_file(self, tmp_path, name, faults):
        path = tmp_path / name
        path.write_text(json.dumps({"seed": 1, "faults": faults}))
        return str(path)

    def test_status_json_surfaces_hang_counters(self, tmp_path):
        plan = self._plan_file(tmp_path, "hang.json", [
            {"kind": "worker-hang", "point": "runworkload",
             "at_cycle": FAULT_CYCLE, "target": "worker:1"},
        ])
        out = io.StringIO()
        code = cli_main(
            self.ARGS + [
                "--workers", "2", "--hang-timeout", str(HANG_FLOOR_S),
                "--fault-plan", plan, "--json",
            ] + self.SESSION,
            out=out,
        )
        assert code == 0
        document = json.loads(out.getvalue())
        resilience = document["verbs"]["status"]["resilience"]
        assert resilience["hangs_detected"] == 1
        assert resilience["workers_killed"] >= 1
        assert resilience["restores"] == 1
        assert resilience["serial_fallbacks"] == 0
        supervision = (
            document["verbs"]["runworkload"]["distributed"]["supervision"]
        )
        assert supervision["enabled"] is True

    def test_status_text_names_supervisor_events(self, tmp_path):
        plan = self._plan_file(tmp_path, "corrupt.json", [
            {"kind": "ring-corrupt", "point": "runworkload",
             "at_cycle": FAULT_CYCLE, "target": "ring:0->1"},
        ])
        out = io.StringIO()
        code = cli_main(
            self.ARGS + [
                "--workers", "2", "--transport", "shm",
                "--fault-plan", plan,
            ] + self.SESSION,
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "supervisor:" in text
        assert "1 ring corruptions" in text
        assert leaked_segments() == []

    def test_clean_status_has_no_supervisor_line(self):
        out = io.StringIO()
        code = cli_main(
            self.ARGS + ["--workers", "2"] + self.SESSION, out=out
        )
        assert code == 0
        assert "supervisor:" not in out.getvalue()

    def test_invalid_transport_timeout_is_one_line_error(self):
        out, err = io.StringIO(), io.StringIO()
        code = cli_main(
            self.ARGS + ["--transport-timeout", "0", "buildafi"],
            out=out, err=err,
        )
        assert code == 1
        text = err.getvalue()
        assert len(text.strip().splitlines()) == 1
        assert text.startswith("firesim: error:")
        assert "transport timeout" in text
