"""Switch model behaviour (repro.net.switch, paper §III-B1)."""

import pytest

from repro.core.token import TokenBatch, TokenWindow
from repro.net.ethernet import BROADCAST_MAC, EthernetFrame, mac_address
from repro.net.switch import SwitchConfig, SwitchModel


def make_switch(ports=3, min_latency=10, mac_table=None, default_port=None,
                buffer_flits=16384, cycles_per_flit=1):
    return SwitchModel(
        "sw",
        SwitchConfig(
            num_ports=ports,
            min_latency_cycles=min_latency,
            buffer_flits=buffer_flits,
            cycles_per_flit=cycles_per_flit,
        ),
        mac_table=mac_table or {},
        default_port=default_port,
    )


def tick(switch, window_start, window_len, injections):
    """Drive one window; injections maps port index -> [(cycle, frame)]."""
    window = TokenWindow(window_start, window_start + window_len)
    inputs = {}
    for port in range(switch.config.num_ports):
        batch = TokenBatch.empty(window_start, window_len)
        for cycle, frame in injections.get(port, []):
            for index, flit in enumerate(frame.to_flits()):
                batch.add(cycle + index, flit)
        inputs[f"port{port}"] = batch
    return switch.tick(window, inputs)


def frame_to(dst, size=64):
    return EthernetFrame(src=mac_address(7), dst=dst, size_bytes=size)


def egress_cycles(batch):
    return [cycle for cycle, flit in batch.iter_flits()]


class TestRouting:
    def test_unicast_follows_mac_table(self):
        mac = mac_address(1)
        switch = make_switch(mac_table={mac: 2})
        outputs = tick(switch, 0, 100, {0: [(0, frame_to(mac))]})
        assert outputs["port2"].valid_count == 8
        assert outputs["port1"].valid_count == 0

    def test_unknown_mac_uses_default_port(self):
        switch = make_switch(default_port=1)
        outputs = tick(switch, 0, 100, {0: [(0, frame_to(mac_address(99)))]})
        assert outputs["port1"].valid_count == 8

    def test_unknown_mac_without_default_dropped(self):
        switch = make_switch()
        outputs = tick(switch, 0, 100, {0: [(0, frame_to(mac_address(99)))]})
        assert all(b.valid_count == 0 for b in outputs.values())

    def test_broadcast_floods_all_but_ingress(self):
        switch = make_switch(ports=4)
        outputs = tick(switch, 0, 100, {1: [(0, frame_to(BROADCAST_MAC))]})
        assert outputs["port1"].valid_count == 0
        for port in (0, 2, 3):
            assert outputs[f"port{port}"].valid_count == 8
        assert switch.stats.broadcasts == 1


class TestTiming:
    def test_store_and_forward_releases_after_last_flit_plus_latency(self):
        mac = mac_address(1)
        switch = make_switch(min_latency=10, mac_table={mac: 1})
        frame = frame_to(mac)  # 8 flits: last arrives at cycle 7
        outputs = tick(switch, 0, 100, {0: [(0, frame)]})
        cycles = egress_cycles(outputs["port1"])
        assert cycles[0] == 7 + 10  # arrival of last token + min latency
        assert cycles == list(range(17, 25))

    def test_min_latency_configurable(self):
        mac = mac_address(1)
        switch = make_switch(min_latency=50, mac_table={mac: 1})
        outputs = tick(switch, 0, 100, {0: [(0, frame_to(mac))]})
        assert egress_cycles(outputs["port1"])[0] == 7 + 50

    def test_contending_packets_serialize_on_output_port(self):
        mac = mac_address(1)
        switch = make_switch(ports=3, mac_table={mac: 2})
        outputs = tick(
            switch,
            0,
            200,
            {0: [(0, frame_to(mac))], 1: [(0, frame_to(mac))]},
        )
        cycles = egress_cycles(outputs["port2"])
        assert len(cycles) == 16
        # Both packets timestamped identically; they serialize back-to-back.
        assert cycles == list(range(17, 33))

    def test_packet_straddles_window_boundary(self):
        mac = mac_address(1)
        switch = make_switch(mac_table={mac: 1})
        outputs = tick(switch, 0, 20, {0: [(10, frame_to(mac))]})
        first = egress_cycles(outputs["port1"])
        # last flit at 17, +10 latency => egress from 27: next window.
        assert first == []
        outputs = tick(switch, 20, 20, {})
        second = egress_cycles(outputs["port1"])
        assert second == list(range(27, 35))

    def test_egress_pacing_with_cycles_per_flit(self):
        mac = mac_address(1)
        switch = make_switch(mac_table={mac: 1}, cycles_per_flit=4)
        outputs = tick(switch, 0, 100, {0: [(0, frame_to(mac))]})
        cycles = egress_cycles(outputs["port1"])
        assert cycles == list(range(17, 17 + 8 * 4, 4))


class TestCongestionAndDrops:
    def test_drop_when_packet_lags_beyond_buffer(self):
        mac = mac_address(1)
        switch = make_switch(mac_table={mac: 1}, buffer_flits=16)
        # Keep the output port saturated: inject 8 frames per window from
        # two ingress ports; the port drains 1 flit/cycle so the queue
        # builds until packets exceed the 16-flit lag bound and drop.
        for window_index in range(6):
            start = window_index * 64
            injections = {
                0: [(start + i * 8, frame_to(mac)) for i in range(8)],
                2: [(start + i * 8, frame_to(mac)) for i in range(8)],
            }
            tick(switch, start, 64, injections)
        assert switch.stats.packets_dropped > 0
        assert (
            switch.stats.packets_in
            == switch.stats.packets_out
            + switch.stats.packets_dropped
            + switch.queued_packets()
        )

    def test_no_drops_below_buffer_bound(self):
        mac = mac_address(1)
        switch = make_switch(mac_table={mac: 1}, buffer_flits=100_000)
        for window_index in range(4):
            start = window_index * 64
            tick(switch, start, 64, {0: [(start, frame_to(mac))]})
        assert switch.stats.packets_dropped == 0


class TestStats:
    def test_bytes_and_packets_counted(self):
        mac = mac_address(1)
        switch = make_switch(mac_table={mac: 1})
        tick(switch, 0, 200, {0: [(0, frame_to(mac, size=128))]})
        assert switch.stats.packets_in == 1
        assert switch.stats.packets_out == 1
        assert switch.stats.bytes_in == 128
        assert switch.stats.bytes_out == 128

    def test_bytes_in_counts_ingress_even_when_dropped(self):
        """Ingress accounting is independent of egress fate, so ingress
        utilization is computable from bytes_in alone."""
        switch = make_switch()  # no MAC table, no default: all dropped
        tick(switch, 0, 200, {0: [(0, frame_to(mac_address(5), size=256))]})
        assert switch.stats.bytes_in == 256
        assert switch.stats.bytes_out == 0

    def test_byte_conservation_through_congestion(self):
        """bytes_in == bytes_out + bytes_dropped + queued bytes, even
        while the output port is saturated and dropping."""
        mac = mac_address(1)
        switch = make_switch(mac_table={mac: 1}, buffer_flits=16)
        for window_index in range(6):
            start = window_index * 64
            injections = {
                0: [(start + i * 8, frame_to(mac)) for i in range(8)],
                2: [(start + i * 8, frame_to(mac)) for i in range(8)],
            }
            tick(switch, start, 64, injections)
            stats = switch.stats
            assert stats.bytes_in == (
                stats.bytes_out + stats.bytes_dropped + switch.queued_bytes()
            )
        assert switch.stats.packets_dropped > 0
        assert switch.stats.bytes_dropped == 64 * switch.stats.packets_dropped

    def test_byte_conservation_after_drain(self):
        """Once the queues drain with no drops, every ingress byte has
        egressed exactly once."""
        mac = mac_address(1)
        switch = make_switch(mac_table={mac: 1})
        tick(switch, 0, 64, {0: [(0, frame_to(mac, size=200))]})
        tick(switch, 64, 200, {})
        assert switch.queued_packets() == 0
        assert switch.stats.bytes_in == switch.stats.bytes_out == 200
        assert switch.stats.bytes_dropped == 0

    def test_bandwidth_probe_records_egress(self):
        mac = mac_address(1)
        switch = make_switch(mac_table={mac: 1})
        switch.enable_bandwidth_probe()
        tick(switch, 0, 200, {0: [(0, frame_to(mac))]})
        assert len(switch.egress_log) == 1
        cycle, size = switch.egress_log[0]
        assert size == 64


class TestConfigValidation:
    def test_bad_port_count(self):
        with pytest.raises(ValueError):
            SwitchConfig(num_ports=0)

    def test_bad_latency(self):
        with pytest.raises(ValueError):
            SwitchConfig(num_ports=2, min_latency_cycles=-1)

    def test_bad_pacing(self):
        with pytest.raises(ValueError):
            SwitchConfig(num_ports=2, cycles_per_flit=0)

    def test_bad_buffer(self):
        with pytest.raises(ValueError):
            SwitchConfig(num_ports=2, buffer_flits=0)
