"""Property-based tests on the switch model's invariants."""

from hypothesis import given, settings, strategies as st

from repro.core.token import TokenBatch, TokenWindow
from repro.net.ethernet import EthernetFrame, mac_address
from repro.net.switch import SwitchConfig, SwitchModel


def drive(switch, windows, injections_per_window):
    """Tick the switch over several windows with scripted injections."""
    collected = {p: [] for p in range(switch.config.num_ports)}
    for window_index in range(windows):
        start = window_index * 512
        window = TokenWindow(start, start + 512)
        inputs = {}
        for port in range(switch.config.num_ports):
            batch = TokenBatch.empty(start, 512)
            for offset, frame in injections_per_window.get(
                (window_index, port), []
            ):
                for index, flit in enumerate(frame.to_flits()):
                    batch.add(start + offset + index, flit)
            inputs[f"port{port}"] = batch
        outputs = switch.tick(window, inputs)
        for port in range(switch.config.num_ports):
            for cycle, flit in outputs[f"port{port}"].iter_flits():
                if flit.last:
                    collected[port].append((cycle, flit.data.frame_id))
    return collected


@st.composite
def traffic_pattern(draw):
    """Random (window, ingress port, offset) injections toward port 2."""
    injections = {}
    count = draw(st.integers(min_value=1, max_value=12))
    for _ in range(count):
        window = draw(st.integers(min_value=0, max_value=3))
        port = draw(st.integers(min_value=0, max_value=1))
        offset = draw(st.integers(min_value=0, max_value=400))
        frame = EthernetFrame(
            src=mac_address(port), dst=mac_address(9), size_bytes=64
        )
        injections.setdefault((window, port), []).append((offset, frame))
    # Keep flits within one port's window: drop overlapping offsets.
    for key, entries in injections.items():
        entries.sort(key=lambda entry: entry[0])
        pruned = []
        cursor = -1
        for offset, frame in entries:
            if offset > cursor:
                pruned.append((offset, frame))
                cursor = offset + frame.flit_count
        injections[key] = pruned
    return injections


class TestSwitchInvariants:
    @settings(max_examples=30)
    @given(traffic_pattern())
    def test_no_packet_loss_or_duplication_without_congestion(self, injections):
        switch = SwitchModel(
            "sw",
            SwitchConfig(num_ports=3, buffer_flits=10**6),
            mac_table={mac_address(9): 2},
        )
        collected = drive(switch, 8, injections)
        sent_ids = sorted(
            frame.frame_id
            for entries in injections.values()
            for _, frame in entries
        )
        received_ids = sorted(frame_id for _, frame_id in collected[2])
        assert received_ids == sent_ids
        assert not collected[0] and not collected[1]

    @settings(max_examples=30)
    @given(traffic_pattern())
    def test_per_flow_fifo_ordering(self, injections):
        """Packets from one ingress port leave in arrival order."""
        switch = SwitchModel(
            "sw",
            SwitchConfig(num_ports=3, buffer_flits=10**6),
            mac_table={mac_address(9): 2},
        )
        # Record per-port arrival order of frame ids.
        arrival_order = {0: [], 1: []}
        for (window, port), entries in sorted(injections.items()):
            for offset, frame in sorted(entries, key=lambda e: e[0]):
                arrival_order[port].append(frame.frame_id)
        collected = drive(switch, 8, injections)
        egress_ids = [frame_id for _, frame_id in sorted(collected[2])]
        for port, expected in arrival_order.items():
            seen = [fid for fid in egress_ids if fid in set(expected)]
            assert seen == expected

    @settings(max_examples=20)
    @given(traffic_pattern())
    def test_egress_never_precedes_min_switch_latency(self, injections):
        latency = 25
        switch = SwitchModel(
            "sw",
            SwitchConfig(num_ports=3, min_latency_cycles=latency,
                         buffer_flits=10**6),
            mac_table={mac_address(9): 2},
        )
        ingress_last_flit = {}
        for (window, port), entries in injections.items():
            for offset, frame in entries:
                ingress_last_flit[frame.frame_id] = (
                    window * 512 + offset + frame.flit_count - 1
                )
        collected = drive(switch, 8, injections)
        for cycle, frame_id in collected[2]:
            # Last egress flit >= ingress last flit + latency + (flits-1).
            assert cycle >= ingress_last_flit[frame_id] + latency + 7
