"""TileLink interconnect occupancy (repro.tile.tilelink)."""

import pytest

from repro.tile.tilelink import TileLinkBus


class TestTileLinkBus:
    def test_burst_occupies_one_beat_per_8_bytes(self):
        bus = TileLinkBus()
        assert bus.acquire(0, 64) == 8

    def test_partial_beat_rounds_up(self):
        bus = TileLinkBus()
        assert bus.acquire(0, 9) == 2

    def test_contention_serializes(self):
        bus = TileLinkBus()
        first = bus.acquire(0, 64)
        second = bus.acquire(0, 64)
        assert second == first + 8
        assert bus.stats.stall_cycles == first

    def test_idle_bus_no_stall(self):
        bus = TileLinkBus()
        bus.acquire(0, 64)
        bus.acquire(100, 64)
        assert bus.stats.stall_cycles == 0

    def test_stats_accumulate(self):
        bus = TileLinkBus()
        bus.acquire(0, 64)
        bus.acquire(0, 16)
        assert bus.stats.requests == 2
        assert bus.stats.beats == 8 + 2

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            TileLinkBus().acquire(0, 0)

    def test_busy_until_tracks_completion(self):
        bus = TileLinkBus()
        done = bus.acquire(10, 32)
        assert bus.busy_until == done
