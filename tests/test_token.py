"""Tokens and token batches (repro.core.token)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.token import Flit, TokenBatch, TokenWindow, split_packets


class TestTokenBatch:
    def test_empty_batch_has_no_valid_tokens(self):
        batch = TokenBatch.empty(0, 100)
        assert batch.valid_count == 0
        assert len(batch) == 100
        assert batch.end_cycle == 100

    def test_add_and_iterate_in_cycle_order(self):
        batch = TokenBatch(10, 10)
        batch.add(15, Flit("b"))
        batch.add(12, Flit("a"))
        cycles = [cycle for cycle, _ in batch.iter_flits()]
        assert cycles == [12, 15]

    def test_add_outside_window_rejected(self):
        batch = TokenBatch(10, 10)
        with pytest.raises(ValueError):
            batch.add(9, Flit("x"))
        with pytest.raises(ValueError):
            batch.add(20, Flit("x"))

    def test_one_flit_per_cycle(self):
        batch = TokenBatch(0, 10)
        batch.add(5, Flit("x"))
        with pytest.raises(ValueError):
            batch.add(5, Flit("y"))

    def test_zero_length_rejected(self):
        with pytest.raises(ValueError):
            TokenBatch(0, 0)

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            TokenBatch(-1, 10)

    def test_contains_cycle_bounds(self):
        batch = TokenBatch(5, 5)
        assert batch.contains_cycle(5)
        assert batch.contains_cycle(9)
        assert not batch.contains_cycle(10)
        assert not batch.contains_cycle(4)

    @given(
        st.sets(st.integers(min_value=0, max_value=99), max_size=50),
    )
    def test_valid_count_matches_additions(self, cycles):
        batch = TokenBatch(0, 100)
        for cycle in cycles:
            batch.add(cycle, Flit(cycle))
        assert batch.valid_count == len(cycles)
        assert sorted(c for c, _ in batch.iter_flits()) == sorted(cycles)


class TestTokenWindow:
    def test_window_length(self):
        assert TokenWindow(10, 20).length == 10

    def test_empty_window_rejected(self):
        with pytest.raises(ValueError):
            TokenWindow(10, 10)

    def test_new_batch_covers_window(self):
        batch = TokenWindow(10, 20).new_batch()
        assert batch.start_cycle == 10
        assert batch.length == 10


class TestSplitPackets:
    def test_single_packet(self):
        flits = [(0, Flit("a")), (1, Flit("a", last=True))]
        packets = split_packets(flits)
        assert len(packets) == 1
        assert len(packets[0]) == 2

    def test_two_packets(self):
        flits = [
            (0, Flit("a", last=True)),
            (3, Flit("b")),
            (4, Flit("b", last=True)),
        ]
        packets = split_packets(flits)
        assert [len(p) for p in packets] == [1, 2]

    def test_trailing_partial_returned(self):
        flits = [(0, Flit("a", last=True)), (1, Flit("b"))]
        packets = split_packets(flits)
        assert len(packets) == 2
        assert not packets[1][-1][1].last

    def test_empty_stream(self):
        assert split_packets([]) == []
