"""Topology DSL (repro.manager.topology, Figure 4)."""

import pytest

from repro.manager.topology import (
    ServerNode,
    SwitchNode,
    datacenter_tree,
    single_rack,
    two_tier,
    validate_topology,
)


class TestFigure4Example:
    def test_paper_configuration_snippet(self):
        """The exact construction shown in Figure 4."""
        root = SwitchNode()
        level2switches = [SwitchNode() for _ in range(8)]
        servers = [
            [ServerNode("QuadCore") for _ in range(8)] for _ in range(8)
        ]
        root.add_downlinks(level2switches)
        for switch, rack in zip(level2switches, servers):
            switch.add_downlinks(rack)
        validate_topology(root)
        assert len(list(root.iter_servers())) == 64
        assert len(list(root.iter_switches())) == 9
        assert root.depth() == 2


class TestDSL:
    def test_unknown_server_type_rejected_eagerly(self):
        with pytest.raises(ValueError):
            ServerNode("WarpCore")

    def test_double_uplink_rejected(self):
        server = ServerNode()
        SwitchNode().add_downlinks([server])
        with pytest.raises(ValueError, match="already has an uplink"):
            SwitchNode().add_downlinks([server])

    def test_self_link_rejected(self):
        switch = SwitchNode()
        with pytest.raises(ValueError):
            switch.add_downlinks([switch])

    def test_num_ports_counts_uplink(self):
        root = SwitchNode()
        tor = SwitchNode()
        tor.add_downlinks([ServerNode() for _ in range(4)])
        root.add_downlinks([tor])
        assert tor.num_ports == 5
        assert root.num_ports == 1

    def test_iter_servers_is_deterministic_preorder(self):
        root = two_tier(num_racks=2, servers_per_rack=2)
        first = [id(s) for s in root.iter_servers()]
        second = [id(s) for s in root.iter_servers()]
        assert first == second
        assert len(first) == 4


class TestValidation:
    def test_empty_switch_rejected(self):
        with pytest.raises(ValueError, match="no downlinks"):
            validate_topology(SwitchNode())

    def test_serverless_topology_rejected(self):
        root = SwitchNode()
        tor = SwitchNode()
        tor.add_downlinks([ServerNode()])
        root.add_downlinks([tor])
        validate_topology(root)  # fine
        empty_root = SwitchNode()
        inner = SwitchNode()
        inner.add_downlinks([SwitchNode()])
        empty_root.add_downlinks([inner])
        with pytest.raises(ValueError):
            validate_topology(empty_root)


class TestCannedTopologies:
    def test_single_rack(self):
        root = single_rack(8)
        assert len(list(root.iter_servers())) == 8
        assert root.depth() == 1

    def test_two_tier_matches_figure_1(self):
        root = two_tier(num_racks=8, servers_per_rack=8)
        assert len(list(root.iter_servers())) == 64
        assert len(list(root.iter_switches())) == 9

    def test_datacenter_tree_matches_figure_10(self):
        root = datacenter_tree()
        servers = list(root.iter_servers())
        switches = list(root.iter_switches())
        assert len(servers) == 1024
        # 1 root + 4 aggregation + 32 ToR.
        assert len(switches) == 37
        assert root.depth() == 3
        # Root has 4 downlinks; each aggregation has 8; ToRs have 32.
        assert len(root.downlinks) == 4
        tor_port_counts = {
            s.num_ports for s in switches if s.depth() == 1
        }
        assert tor_port_counts == {33}
