"""Network tracing probes (repro.net.tracer)."""

import pytest

from repro.core.simulation import Simulation
from repro.net.ethernet import mac_address
from repro.net.switch import SwitchConfig, SwitchModel
from repro.net.tracer import LatencyProbe, LinkTracer, splice_tracer
from repro.obs.trace import ChromeTraceSink, set_trace_sink
from repro.swmodel.apps.ping import RESULT_KEY, make_ping_client
from repro.swmodel.server import ServerBlade


def traced_pair(link_latency=6400, quantum_override=None):
    sim = Simulation(quantum_override=quantum_override)
    a = sim.add_model(ServerBlade("node0", node_index=0))
    b = sim.add_model(ServerBlade("node1", node_index=1))
    switch = sim.add_model(
        SwitchModel(
            "tor",
            SwitchConfig(num_ports=2),
            mac_table={mac_address(0): 0, mac_address(1): 1},
        )
    )
    tracer_a = splice_tracer(sim, a, "net", switch, "port0", link_latency, "trace-a")
    tracer_b = splice_tracer(sim, switch, "port1", b, "net", link_latency, "trace-b")
    return sim, a, b, tracer_a, tracer_b


class TestSplicing:
    def test_tracer_preserves_end_to_end_timing(self):
        """RTTs with a spliced tracer equal RTTs on a plain link."""

        def run(with_tracer):
            sim = Simulation()
            a = sim.add_model(ServerBlade("node0", node_index=0))
            b = sim.add_model(ServerBlade("node1", node_index=1))
            switch = sim.add_model(
                SwitchModel(
                    "tor",
                    SwitchConfig(num_ports=2),
                    mac_table={mac_address(0): 0, mac_address(1): 1},
                )
            )
            if with_tracer:
                splice_tracer(sim, a, "net", switch, "port0", 6400)
            else:
                sim.connect(a, "net", switch, "port0", 6400)
            sim.connect(switch, "port1", b, "net", 6400)
            a.spawn("ping", make_ping_client(b.mac, count=4, interval_cycles=80_000))
            sim.run_seconds(0.001)
            return tuple(a.results[RESULT_KEY])

        assert run(True) == run(False)

    def test_odd_latency_rejected(self):
        sim = Simulation()
        a = sim.add_model(ServerBlade("node0", node_index=0))
        b = sim.add_model(ServerBlade("node1", node_index=1))
        with pytest.raises(ValueError, match="odd"):
            splice_tracer(sim, a, "net", b, "net", 6401)

    def test_timing_invariance_under_small_quantum(self):
        """Splicing stays distortion-free when the round quantum is
        overridden to far less than the (half-)link latency: batching
        granularity must not change cycle arithmetic."""

        def rtts(quantum_override):
            sim, a, b, _, _ = traced_pair(
                link_latency=6400, quantum_override=quantum_override
            )
            a.spawn(
                "ping",
                make_ping_client(b.mac, count=3, interval_cycles=80_000),
            )
            sim.run_seconds(0.001)
            return tuple(a.results[RESULT_KEY])

        full = rtts(None)  # natural quantum: the 3200-cycle half link
        assert len(full) == 2  # count=3, first skipped (ARP)
        assert full == rtts(400)
        assert full == rtts(100)


class TestRecords:
    def test_packets_recorded_with_direction(self):
        sim, a, b, tracer_a, tracer_b = traced_pair()
        a.spawn("ping", make_ping_client(b.mac, count=3, interval_cycles=80_000))
        sim.run_seconds(0.001)
        requests = tracer_a.packets("a_to_b")
        replies = tracer_a.packets("b_to_a")
        assert len(requests) == 3
        assert len(replies) == 3
        for record in requests:
            assert record.src == a.mac
            assert record.dst == b.mac
            assert record.last_flit_cycle >= record.first_flit_cycle

    def test_packet_spans_land_in_trace_sink(self):
        """With a Chrome sink installed, every recorded packet also
        becomes a target-time span on the tracer's track."""
        sink = set_trace_sink(ChromeTraceSink())
        try:
            sim, a, b, tracer_a, _ = traced_pair()
            a.spawn(
                "ping",
                make_ping_client(b.mac, count=3, interval_cycles=80_000),
            )
            sim.run_seconds(0.001)
        finally:
            set_trace_sink(None)
        spans = [
            e for e in sink.events
            if e.get("cat") == "net" and e["tid"] and e.get("ph") == "X"
        ]
        by_track = [
            e for e in spans
            if e["args"].get("bytes") is not None
        ]
        # 3 requests + 3 replies per tracer, two tracers.
        assert len(by_track) == len(tracer_a.records) * 2 == 12
        record = tracer_a.packets("a_to_b")[0]
        match = [
            e for e in spans
            if e["name"] == "a_to_b"
            and e["args"]["start_cycle"] == record.first_flit_cycle
        ]
        assert match, "tracer record missing from the trace sink"

    def test_latency_probe_measures_switch_crossing(self):
        sim, a, b, tracer_a, tracer_b = traced_pair(link_latency=6400)
        a.spawn("ping", make_ping_client(b.mac, count=3, interval_cycles=80_000))
        sim.run_seconds(0.001)
        probe = LatencyProbe(tracer_a, tracer_b)
        latencies = probe.latencies("a_to_b", "a_to_b")
        assert len(latencies) == 3
        # Path between tracers, last flit to last flit: half-link +
        # store-and-forward switch (release stamped at last ingress flit
        # + 10-cycle min latency, then the packet reserializes) +
        # half-link = link latency + 10 + (flits - 1).
        flits = -(-tracer_a.packets("a_to_b")[0].size_bytes // 8)
        assert all(lat == 6400 + 10 + flits - 1 for lat in latencies)
