"""UART console and the Linux boot model."""

import pytest

from repro.manager.runfarm import elaborate
from repro.manager.topology import single_rack
from repro.swmodel.apps.boot import BootConfig, booted_cycle, make_linux_boot
from repro.tile.uart import UART, UARTConfig


class TestUART:
    def test_characters_serialize_at_baud_rate(self):
        uart = UART("u", UARTConfig(baud_rate=115_200))
        per_char = uart.config.cycles_per_char
        done = uart.write(0, "ab")
        assert done == 2 * per_char

    def test_lines_timestamped_on_newline(self):
        uart = UART("u")
        uart.write(0, "hello\nworld\n")
        assert uart.lines() == ["hello", "world"]
        first_cycle, _ = uart.log[0]
        second_cycle, _ = uart.log[1]
        assert second_cycle > first_cycle

    def test_partial_line_needs_flush(self):
        uart = UART("u")
        uart.write(0, "no newline")
        assert uart.lines() == []
        uart.flush(10**9)
        assert uart.lines() == ["no newline"]

    def test_back_to_back_writes_queue(self):
        uart = UART("u")
        first_done = uart.write(0, "a")
        second_done = uart.write(0, "b")
        assert second_done == 2 * uart.config.cycles_per_char
        assert second_done > first_done

    def test_bad_baud_rejected(self):
        with pytest.raises(ValueError):
            UARTConfig(baud_rate=0)


class TestLinuxBoot:
    def test_boot_reaches_userspace_and_logs_banner(self):
        sim = elaborate(single_rack(2))
        blade = sim.blade(0)
        blade.spawn("init", make_linux_boot())
        sim.run_seconds(0.006)
        cycle = booted_cycle(blade.results)
        assert cycle >= BootConfig().total_cycles
        lines = blade.uart.lines()
        assert lines[0].startswith("OpenSBI")
        assert lines[-1] == "reboot: Power down"
        # UART timestamps are monotone and match the boot progression.
        stamps = [c for c, _ in blade.uart.log]
        assert stamps == sorted(stamps)

    def test_unbooted_blade_raises(self):
        sim = elaborate(single_rack(2))
        with pytest.raises(LookupError):
            booted_cycle(sim.blade(0).results)

    def test_console_requires_uart(self):
        sim = elaborate(single_rack(2))
        blade = sim.blade(0)
        blade.kernel.uart = None

        def body(api):
            api.console("boom")
            yield from ()

        blade.spawn("bad", body)
        with pytest.raises(RuntimeError, match="no UART"):
            sim.run_seconds(0.0001)
