"""Unit-conversion helpers (repro.core.units)."""

import pytest
from hypothesis import given, strategies as st

from repro.core import units


class TestCycleConversions:
    def test_two_microseconds_at_3_2ghz(self):
        assert units.cycles_from_seconds(2e-6, 3.2e9) == 6400

    def test_zero_duration(self):
        assert units.cycles_from_seconds(0.0, 3.2e9) == 0

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            units.cycles_from_seconds(-1e-9, 3.2e9)

    def test_seconds_roundtrip(self):
        assert units.seconds_from_cycles(6400, 3.2e9) == pytest.approx(2e-6)

    @given(st.integers(min_value=0, max_value=10**12))
    def test_roundtrip_is_identity_on_whole_cycles(self, cycles):
        freq = 3.2e9
        seconds = units.seconds_from_cycles(cycles, freq)
        assert units.cycles_from_seconds(seconds, freq) == cycles


class TestBandwidth:
    def test_link_bandwidth_is_204_8_gbps(self):
        assert units.link_bandwidth_bps(3.2e9) == pytest.approx(204.8e9)

    def test_bits_per_cycle(self):
        assert units.bits_per_cycle(204.8e9, 3.2e9) == pytest.approx(64.0)

    def test_gbps_helper(self):
        assert units.gbps(1.5) == 1.5e9


class TestFlits:
    def test_exact_multiple(self):
        assert units.flits_for_bytes(64) == 8

    def test_rounds_up(self):
        assert units.flits_for_bytes(65) == 9

    def test_zero_bytes_still_one_token(self):
        assert units.flits_for_bytes(0) == 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            units.flits_for_bytes(-1)

    def test_mtu_frame(self):
        # 1514-byte frame -> 190 flits of 8 bytes.
        assert units.flits_for_bytes(1514) == 190

    @given(st.integers(min_value=1, max_value=10**6))
    def test_flit_count_covers_bytes(self, size):
        flits = units.flits_for_bytes(size)
        assert flits * units.FLIT_BYTES >= size
        assert (flits - 1) * units.FLIT_BYTES < size


class TestTimeHelpers:
    def test_microseconds(self):
        assert units.microseconds(2.0) == pytest.approx(2e-6)

    def test_nanoseconds(self):
        assert units.nanoseconds(5.0) == pytest.approx(5e-9)
