"""Workload runner and manager lifecycle (repro.manager)."""

import pytest

from repro.manager.manager import FireSimManager, ManagerError
from repro.manager.topology import single_rack, two_tier
from repro.manager.workload import WorkloadSpec
from repro.swmodel.apps.ping import RESULT_KEY, make_ping_client
from repro.swmodel.process import Compute


def compute_job(blade):
    def body(api):
        yield Compute(1000)
        api.record("done", api.now())

    blade.spawn("job", body)


class TestWorkloadSpec:
    def test_add_job_chains(self):
        spec = WorkloadSpec("w").add_job(0, "a", compute_job).add_job(
            1, "b", compute_job
        )
        assert [j.name for j in spec.jobs] == ["a", "b"]

    def test_validation_catches_bad_node(self):
        manager = FireSimManager(single_rack(2))
        manager.buildafi()
        manager.launchrunfarm()
        manager.infrasetup()
        spec = WorkloadSpec("w").add_job(5, "ghost", compute_job)
        with pytest.raises(ValueError, match="nonexistent node"):
            manager.runworkload(spec)


class TestManagerLifecycle:
    def test_verbs_must_run_in_order(self):
        manager = FireSimManager(single_rack(2))
        with pytest.raises(ManagerError):
            manager.infrasetup()
        manager.launchrunfarm()
        with pytest.raises(ManagerError):
            manager.infrasetup()  # buildafi still missing
        manager.buildafi()
        manager.infrasetup()

    def test_cost_and_rate_require_launch(self):
        manager = FireSimManager(single_rack(2))
        with pytest.raises(ManagerError):
            manager.cost_report()
        with pytest.raises(ManagerError):
            manager.rate_estimate()

    def test_runworkload_requires_infrasetup(self):
        manager = FireSimManager(single_rack(2))
        with pytest.raises(ManagerError):
            manager.runworkload(WorkloadSpec("w"))

    def test_terminate_clears_state(self):
        manager = FireSimManager(single_rack(2))
        manager.buildafi()
        manager.launchrunfarm()
        manager.infrasetup()
        manager.terminaterunfarm()
        assert manager.running is None
        assert manager.deployment is None

    def test_buildafi_covers_distinct_server_types(self):
        root = single_rack(2)
        manager = FireSimManager(root)
        results = manager.buildafi()
        assert [r.config_name for r in results] == ["QuadCore"]


class TestEndToEnd:
    def test_full_lifecycle_with_ping_workload(self):
        manager = FireSimManager(two_tier(num_racks=2, servers_per_rack=2))
        manager.buildafi()
        deployment = manager.launchrunfarm()
        assert deployment.instance_counts["f1.16xlarge"] == 1
        sim = manager.infrasetup()
        target_mac = sim.blade(2).mac
        workload = WorkloadSpec("ping", duration_seconds=0.001)
        workload.add_job(
            0,
            "ping",
            lambda blade: blade.spawn(
                "ping",
                make_ping_client(target_mac, count=3, interval_cycles=80_000),
            ),
        )
        result = manager.runworkload(workload)
        assert len(result.results_for(0)[RESULT_KEY]) == 2
        assert result.merged(RESULT_KEY) == result.results_for(0)[RESULT_KEY]

    def test_collected_results_cover_all_nodes(self):
        manager = FireSimManager(single_rack(3))
        manager.buildafi()
        manager.launchrunfarm()
        manager.infrasetup()
        workload = WorkloadSpec("compute", duration_seconds=0.0001)
        for node in range(3):
            workload.add_job(node, f"job{node}", compute_job)
        result = manager.runworkload(workload)
        for node in range(3):
            assert "done" in result.results_for(node)
